//! LOGRES instances (Definition 4) and ground facts.
//!
//! An instance of a schema `(Σ, isa)` is a triple `(π, ν, ρ)`:
//!
//! * `π` — the **oid assignment**: each class a finite set of oids, with
//!   `C isa C' ⇒ π(C) ⊆ π(C')` (condition a) and intersecting classes
//!   belonging to one generalization hierarchy (condition b);
//! * `ν` — the partial **o-value assignment**: each oid one value, whose
//!   projection on `Σ(C)` conforms for every class `C` containing the oid;
//! * `ρ` — the **association assignment**: each association a finite set of
//!   tuples, with *no* nil oids (associations must reference existing
//!   objects, Section 2.1).
//!
//! Data-function extensions (Section 2.1) also live here, as
//! `member(elem, f(args))` facts, so the whole derived state of a database
//! is one value of this type.
//!
//! The non-commutative composition `⊕` of Appendix B is [`Instance::compose`]:
//! on a ν conflict (same oid, different o-value) the *right* operand wins.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, RwLock};

use rustc_hash::{FxHashMap, FxHashSet};

use crate::error::ModelError;
use crate::oid::{Oid, OidGen};
use crate::schema::Schema;
use crate::sym::Sym;
use crate::value::Value;

/// A ground fact: one element of the set `F` the inflationary operator of
/// Appendix B works on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fact {
    /// `P(self: oid, a1: v1, …)` for a class `P`: the oid belongs to `P` and
    /// its o-value projected on `P`'s attributes is `value`.
    Class {
        /// The class name.
        class: Sym,
        /// The object's identifier.
        oid: Oid,
        /// Tuple over (a subset of) the class's effective attributes.
        value: Value,
    },
    /// `A(v1, …, vn)` for an association `A`.
    Assoc {
        /// The association name.
        assoc: Sym,
        /// The tuple.
        tuple: Value,
    },
    /// `member(elem, f(args))` for a data function `f`.
    Member {
        /// The data function.
        fun: Sym,
        /// Its argument values.
        args: Vec<Value>,
        /// The member element.
        elem: Value,
    },
}

impl Fact {
    /// The predicate name this fact belongs to.
    pub fn predicate(&self) -> Sym {
        match self {
            Fact::Class { class, .. } => *class,
            Fact::Assoc { assoc, .. } => *assoc,
            Fact::Member { fun, .. } => *fun,
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fact::Class { class, oid, value } => {
                write!(f, "{class}(self: {oid}")?;
                if let Some(fs) = value.as_tuple() {
                    for (l, v) in fs {
                        write!(f, ", {l}: {v}")?;
                    }
                }
                f.write_str(")")
            }
            Fact::Assoc { assoc, tuple } => {
                write!(f, "{assoc}")?;
                match tuple.as_tuple() {
                    Some(fs) => {
                        f.write_str("(")?;
                        for (i, (l, v)) in fs.iter().enumerate() {
                            if i > 0 {
                                f.write_str(", ")?;
                            }
                            write!(f, "{l}: {v}")?;
                        }
                        f.write_str(")")
                    }
                    None => write!(f, "({tuple})"),
                }
            }
            Fact::Member { fun, args, elem } => {
                write!(f, "member({elem}, {fun}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str("))")
            }
        }
    }
}

/// One per-argument hash index over an association extension: normalized
/// key value → the tuples carrying that key (see [`Value::index_key`]).
type ArgIndex = Arc<FxHashMap<Value, Arc<Vec<Value>>>>;

/// Lazily built secondary indexes over the association assignment ρ.
///
/// Entries are valid only while `built_at` equals the owning instance's
/// `epoch`; any mutation bumps the epoch, so stale entries are discarded
/// wholesale the next time an index is requested.
#[derive(Debug, Default)]
struct IndexCache {
    /// The `Instance::epoch` these entries were built against.
    built_at: u64,
    /// (association, attribute label) → per-key tuple buckets.
    by_arg: FxHashMap<(Sym, Sym), ArgIndex>,
}

/// A database instance `(π, ν, ρ)` plus data-function extensions.
#[derive(Debug, Default)]
pub struct Instance {
    /// π: class → oids.
    pi: FxHashMap<Sym, FxHashSet<Oid>>,
    /// ν: oid → o-value (the *full* tuple across all classes of the oid's
    /// hierarchy; per-class views are projections).
    nu: FxHashMap<Oid, Value>,
    /// ρ: association → tuples.
    rho: FxHashMap<Sym, FxHashSet<Value>>,
    /// Data-function extensions: f → (args → elements).
    fun: FxHashMap<Sym, FxHashMap<Vec<Value>, BTreeSet<Value>>>,
    /// Mutation counter: bumped by every state change so [`IndexCache`]
    /// staleness is a single integer comparison.
    epoch: u64,
    /// Lazy secondary indexes. Deliberately excluded from `Clone` (a clone
    /// starts with a cold cache) and from `PartialEq` (the cache is derived
    /// state), so the fixpoint loop's clone-and-compare stays cheap.
    cache: RwLock<IndexCache>,
}

impl Clone for Instance {
    fn clone(&self) -> Instance {
        Instance {
            pi: self.pi.clone(),
            nu: self.nu.clone(),
            rho: self.rho.clone(),
            fun: self.fun.clone(),
            epoch: self.epoch,
            cache: RwLock::new(IndexCache::default()),
        }
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Instance) -> bool {
        self.pi == other.pi && self.nu == other.nu && self.rho == other.rho && self.fun == other.fun
    }
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    // ----- reads -----------------------------------------------------------

    /// Oids of a class (empty if the class has no members).
    pub fn oids_of(&self, class: Sym) -> impl Iterator<Item = Oid> + '_ {
        self.pi.get(&class).into_iter().flatten().copied()
    }

    /// Number of objects in a class.
    pub fn class_len(&self, class: Sym) -> usize {
        self.pi.get(&class).map_or(0, |s| s.len())
    }

    /// Is `oid` a member of `class`?
    pub fn is_member(&self, class: Sym, oid: Oid) -> bool {
        self.pi.get(&class).is_some_and(|s| s.contains(&oid))
    }

    /// The o-value of an oid, if assigned.
    pub fn o_value(&self, oid: Oid) -> Option<&Value> {
        self.nu.get(&oid)
    }

    /// The o-value of `oid` *as seen through* `class`: projection of ν(oid)
    /// onto the class's effective attributes.
    pub fn o_value_in(&self, schema: &Schema, class: Sym, oid: Oid) -> Option<Value> {
        let full = self.nu.get(&oid)?;
        let attrs: Vec<Sym> = schema
            .effective(class)?
            .as_tuple()?
            .iter()
            .map(|f| f.label)
            .collect();
        // Projection tolerates missing attributes (a partially-built object
        // mid-evaluation): keep the fields that exist.
        let fs = full.as_tuple()?;
        let mut out = Vec::new();
        for l in attrs {
            if let Ok(i) = fs.binary_search_by(|(fl, _)| fl.cmp(&l)) {
                out.push((l, fs[i].1.clone()));
            }
        }
        // Restore the canonical label order (`attrs` follows declaration
        // order, not the sorted-tuple invariant).
        out.sort_by_key(|a| a.0);
        Some(Value::Tuple(out))
    }

    /// Tuples of an association.
    pub fn tuples_of(&self, assoc: Sym) -> impl Iterator<Item = &Value> + '_ {
        self.rho.get(&assoc).into_iter().flatten()
    }

    /// Number of tuples in an association.
    pub fn assoc_len(&self, assoc: Sym) -> usize {
        self.rho.get(&assoc).map_or(0, |s| s.len())
    }

    /// Does the association contain this tuple?
    pub fn has_tuple(&self, assoc: Sym, tuple: &Value) -> bool {
        self.rho.get(&assoc).is_some_and(|s| s.contains(tuple))
    }

    /// Tuples of `assoc` whose attribute `label` has `key` as its
    /// normalized value ([`Value::index_key`]). Probes a per-(association,
    /// label) hash index built lazily on first use and invalidated by any
    /// mutation, turning a selective literal match from an extension scan
    /// into a bucket lookup. `None` means no tuple matches.
    ///
    /// The returned bucket preserves the extension's iteration order, so a
    /// probe enumerates candidates in the same relative order a full scan
    /// would — evaluation stays deterministic whichever path runs.
    pub fn tuples_matching(&self, assoc: Sym, label: Sym, key: &Value) -> Option<Arc<Vec<Value>>> {
        self.arg_index(assoc, label).get(key).map(Arc::clone)
    }

    /// The per-key index for `(assoc, label)`, building it if the cache is
    /// cold or stale. Concurrent readers may race to build the same index;
    /// both compute identical maps and the first writer wins.
    fn arg_index(&self, assoc: Sym, label: Sym) -> ArgIndex {
        {
            let cache = self.cache.read().expect("index cache poisoned");
            if cache.built_at == self.epoch {
                if let Some(idx) = cache.by_arg.get(&(assoc, label)) {
                    return Arc::clone(idx);
                }
            }
        }
        let mut buckets: FxHashMap<Value, Vec<Value>> = FxHashMap::default();
        for tuple in self.tuples_of(assoc) {
            if let Some(fv) = tuple.field(label) {
                buckets
                    .entry(fv.index_key())
                    .or_default()
                    .push(tuple.clone());
            }
        }
        let built: ArgIndex =
            Arc::new(buckets.into_iter().map(|(k, v)| (k, Arc::new(v))).collect());
        let mut cache = self.cache.write().expect("index cache poisoned");
        if cache.built_at != self.epoch {
            cache.by_arg.clear();
            cache.built_at = self.epoch;
        }
        Arc::clone(cache.by_arg.entry((assoc, label)).or_insert(built))
    }

    /// Record a state change: invalidates every cached index.
    fn touch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// The materialized set value `f(args)` of a data function (empty set if
    /// nothing was derived).
    pub fn fun_value(&self, fun: Sym, args: &[Value]) -> Value {
        match self.fun.get(&fun).and_then(|m| m.get(args)) {
            Some(set) => Value::Set(set.clone()),
            None => Value::empty_set(),
        }
    }

    /// All argument tuples for which `fun` has a non-empty extension.
    pub fn fun_args(&self, fun: Sym) -> impl Iterator<Item = &Vec<Value>> + '_ {
        self.fun.get(&fun).into_iter().flat_map(|m| m.keys())
    }

    /// Membership of `elem` in `fun(args)`.
    pub fn fun_contains(&self, fun: Sym, args: &[Value], elem: &Value) -> bool {
        self.fun
            .get(&fun)
            .and_then(|m| m.get(args))
            .is_some_and(|s| s.contains(elem))
    }

    /// Total number of stored facts (class memberships + association tuples
    /// + function members). Used for progress reporting and fuel limits.
    pub fn fact_count(&self) -> usize {
        self.pi.values().map(|s| s.len()).sum::<usize>()
            + self.rho.values().map(|s| s.len()).sum::<usize>()
            + self
                .fun
                .values()
                .map(|m| m.values().map(|s| s.len()).sum::<usize>())
                .sum::<usize>()
    }

    /// Largest oid in use plus one (floor for resuming an [`OidGen`]).
    pub fn oid_gen(&self) -> OidGen {
        let mut max = None;
        for s in self.pi.values() {
            for o in s {
                max = Some(max.map_or(*o, |m: Oid| m.max(*o)));
            }
        }
        for v in self.nu.keys() {
            max = Some(max.map_or(*v, |m: Oid| m.max(*v)));
        }
        match max {
            Some(m) => OidGen::starting_at(m.0 + 1),
            None => OidGen::new(),
        }
    }

    // ----- fact-level operations -------------------------------------------

    /// Does the instance contain this fact? Class facts match when the oid
    /// is in the class and the stored o-value agrees on every attribute the
    /// fact mentions.
    pub fn contains_fact(&self, schema: &Schema, fact: &Fact) -> bool {
        match fact {
            Fact::Class { class, oid, value } => {
                if !self.is_member(*class, *oid) {
                    return false;
                }
                let Some(stored) = self.nu.get(oid) else {
                    return value.as_tuple().is_some_and(|f| f.is_empty());
                };
                let _ = schema;
                match value.as_tuple() {
                    Some(fs) => fs.iter().all(|(l, v)| stored.field(*l) == Some(v)),
                    None => false,
                }
            }
            Fact::Assoc { assoc, tuple } => self.has_tuple(*assoc, tuple),
            Fact::Member { fun, args, elem } => self.fun_contains(*fun, args, elem),
        }
    }

    /// Insert a fact; returns whether anything changed.
    pub fn insert_fact(&mut self, schema: &Schema, fact: &Fact) -> bool {
        match fact {
            Fact::Class { class, oid, value } => {
                self.insert_object(schema, *class, *oid, value.clone())
            }
            Fact::Assoc { assoc, tuple } => self.insert_assoc(*assoc, tuple.clone()),
            Fact::Member { fun, args, elem } => {
                self.insert_member(*fun, args.clone(), elem.clone())
            }
        }
    }

    /// Remove a fact; returns whether anything changed. Removing a class
    /// fact removes the oid from the class *and all its subclasses* (to
    /// preserve `π(C) ⊆ π(C')`), provided the mentioned attributes match.
    pub fn remove_fact(&mut self, schema: &Schema, fact: &Fact) -> bool {
        match fact {
            Fact::Class { class, oid, value } => {
                if !self.contains_fact(
                    schema,
                    &Fact::Class {
                        class: *class,
                        oid: *oid,
                        value: value.clone(),
                    },
                ) {
                    return false;
                }
                self.remove_object(schema, *class, *oid)
            }
            Fact::Assoc { assoc, tuple } => self.remove_assoc(*assoc, tuple),
            Fact::Member { fun, args, elem } => self.remove_member(*fun, args, elem),
        }
    }

    /// Add `oid` to `class` (and, per condition (a) of Definition 4, to all
    /// its isa ancestors) and merge `value`'s attributes into ν(oid).
    /// Attributes already present with a different value are overwritten
    /// (`⊕`-style right bias). Returns whether anything changed.
    pub fn insert_object(&mut self, schema: &Schema, class: Sym, oid: Oid, value: Value) -> bool {
        let mut changed = self.pi.entry(class).or_default().insert(oid);
        for sup in schema.ancestors(class) {
            changed |= self.pi.entry(sup).or_default().insert(oid);
        }
        let incoming = match value {
            Value::Tuple(fs) => fs,
            other => vec![(Sym::new("value"), other)],
        };
        match self.nu.get_mut(&oid) {
            Some(Value::Tuple(existing)) => {
                for (l, v) in incoming {
                    match existing.binary_search_by(|(fl, _)| fl.cmp(&l)) {
                        Ok(i) => {
                            if existing[i].1 != v {
                                existing[i].1 = v;
                                changed = true;
                            }
                        }
                        Err(i) => {
                            existing.insert(i, (l, v));
                            changed = true;
                        }
                    }
                }
            }
            _ => {
                let mut fs = incoming;
                fs.sort_by_key(|a| a.0);
                self.nu.insert(oid, Value::Tuple(fs));
                changed = true;
            }
        }
        if changed {
            self.touch();
        }
        changed
    }

    /// Remove `oid` from `class` and all its subclasses; drop ν(oid) once no
    /// class holds the oid anymore.
    pub fn remove_object(&mut self, schema: &Schema, class: Sym, oid: Oid) -> bool {
        let mut changed = false;
        let mut targets = vec![class];
        // All classes that are descendants of `class`.
        for c in schema.classes() {
            if c != class && schema.isa_holds(c, class) {
                targets.push(c);
            }
        }
        for c in targets {
            if let Some(s) = self.pi.get_mut(&c) {
                changed |= s.remove(&oid);
            }
        }
        let still_member = self.pi.values().any(|s| s.contains(&oid));
        if !still_member && self.nu.remove(&oid).is_some() {
            changed = true;
        }
        if changed {
            self.touch();
        }
        changed
    }

    /// Insert an association tuple. Returns whether it was new.
    pub fn insert_assoc(&mut self, assoc: Sym, tuple: Value) -> bool {
        let changed = self.rho.entry(assoc).or_default().insert(tuple);
        if changed {
            self.touch();
        }
        changed
    }

    /// Remove an association tuple. Returns whether it was present.
    pub fn remove_assoc(&mut self, assoc: Sym, tuple: &Value) -> bool {
        let changed = self.rho.get_mut(&assoc).is_some_and(|s| s.remove(tuple));
        if changed {
            self.touch();
        }
        changed
    }

    /// Insert a data-function member. Returns whether it was new.
    pub fn insert_member(&mut self, fun: Sym, args: Vec<Value>, elem: Value) -> bool {
        let changed = self
            .fun
            .entry(fun)
            .or_default()
            .entry(args)
            .or_default()
            .insert(elem);
        if changed {
            self.touch();
        }
        changed
    }

    /// Remove a data-function member. Returns whether it was present.
    pub fn remove_member(&mut self, fun: Sym, args: &[Value], elem: &Value) -> bool {
        let changed = self
            .fun
            .get_mut(&fun)
            .and_then(|m| m.get_mut(args))
            .is_some_and(|s| s.remove(elem));
        if changed {
            self.touch();
        }
        changed
    }

    /// Enumerate every fact in a deterministic order. Class facts are
    /// reported once per class the oid belongs to (so a `student` yields
    /// both a `student` and a `person` fact), with per-class projected
    /// values.
    pub fn facts(&self, schema: &Schema) -> Vec<Fact> {
        let mut out = Vec::new();
        let mut classes: Vec<Sym> = self.pi.keys().copied().collect();
        classes.sort();
        for class in classes {
            let mut oids: Vec<Oid> = self.pi[&class].iter().copied().collect();
            oids.sort();
            for oid in oids {
                let value = self
                    .o_value_in(schema, class, oid)
                    .unwrap_or_else(|| self.nu.get(&oid).cloned().unwrap_or(Value::Tuple(vec![])));
                out.push(Fact::Class { class, oid, value });
            }
        }
        let mut assocs: Vec<Sym> = self.rho.keys().copied().collect();
        assocs.sort();
        for assoc in assocs {
            let mut tuples: Vec<&Value> = self.rho[&assoc].iter().collect();
            tuples.sort();
            for t in tuples {
                out.push(Fact::Assoc {
                    assoc,
                    tuple: t.clone(),
                });
            }
        }
        let mut funs: Vec<Sym> = self.fun.keys().copied().collect();
        funs.sort();
        for fun in funs {
            let mut entries: Vec<(&Vec<Value>, &BTreeSet<Value>)> = self.fun[&fun].iter().collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            for (args, elems) in entries {
                for elem in elems {
                    out.push(Fact::Member {
                        fun,
                        args: args.clone(),
                        elem: elem.clone(),
                    });
                }
            }
        }
        out
    }

    // ----- composition (Appendix B) ----------------------------------------

    /// The non-commutative composition `G ⊕ G'`:
    /// `ρ` and `π` are unioned; for o-values, an oid present in `G'` takes
    /// `G'`'s value (facts of `G` with the same oid but different o-value
    /// are superseded). Function extensions are unioned.
    pub fn compose(&self, right: &Instance) -> Instance {
        let mut out = self.clone();
        for (class, oids) in &right.pi {
            out.pi
                .entry(*class)
                .or_default()
                .extend(oids.iter().copied());
        }
        for (oid, v) in &right.nu {
            out.nu.insert(*oid, v.clone()); // right wins
        }
        for (assoc, tuples) in &right.rho {
            out.rho
                .entry(*assoc)
                .or_default()
                .extend(tuples.iter().cloned());
        }
        for (fun, m) in &right.fun {
            let target = out.fun.entry(*fun).or_default();
            for (args, elems) in m {
                target
                    .entry(args.clone())
                    .or_default()
                    .extend(elems.iter().cloned());
            }
        }
        // The maps were edited directly, bypassing the tracked mutators.
        out.touch();
        out
    }

    // ----- validation (Definition 4) ----------------------------------------

    /// Check all legality conditions of Definition 4 against `schema`, plus
    /// the referential constraints of Section 2.1 (associations reference
    /// existing objects; class references are existing oids or nil).
    pub fn validate(&self, schema: &Schema) -> Result<(), Vec<ModelError>> {
        let mut errs = Vec::new();

        // Condition (a): π(C) ⊆ π(C') when C isa C'.
        for c in schema.classes() {
            for sup in schema.ancestors(c) {
                let sub_oids = self.pi.get(&c);
                let sup_oids = self.pi.get(&sup);
                let ok = match (sub_oids, sup_oids) {
                    (None, _) => true,
                    (Some(s), Some(p)) => s.is_subset(p),
                    (Some(s), None) => s.is_empty(),
                };
                if !ok {
                    errs.push(ModelError::IsaInclusionViolated { sub: c, sup });
                }
            }
        }

        // Condition (b): intersecting classes share a hierarchy.
        let classes: Vec<Sym> = schema.classes().collect();
        for (i, &c1) in classes.iter().enumerate() {
            for &c2 in &classes[i + 1..] {
                if schema.same_hierarchy(c1, c2) {
                    continue;
                }
                let (Some(s1), Some(s2)) = (self.pi.get(&c1), self.pi.get(&c2)) else {
                    continue;
                };
                if s1.intersection(s2).next().is_some() {
                    errs.push(ModelError::HierarchyPartitionViolated { c1, c2 });
                }
            }
        }

        // Every oid has an o-value conforming (projected) to each class.
        for (&class, oids) in &self.pi {
            let Some(eff) = schema.effective(class) else {
                continue;
            };
            let expanded = schema.expand(eff);
            for oid in oids {
                match self.nu.get(oid) {
                    None => errs.push(ModelError::MissingOValue { class }),
                    Some(_) => {
                        if let Some(view) = self.o_value_in(schema, class, *oid) {
                            if let Err(e) = self.conforms(schema, &view, &expanded, true) {
                                errs.push(e);
                            }
                        }
                    }
                }
            }
        }

        // Association tuples conform; nil oids are illegal there.
        for (&assoc, tuples) in &self.rho {
            let Some(ty) = schema.assoc_type(assoc) else {
                continue;
            };
            let expanded = schema.expand(ty);
            for t in tuples {
                if let Err(e) = self.conforms(schema, t, &expanded, false) {
                    errs.push(e);
                }
            }
        }

        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Structural conformance of a value to an (expanded) type, including
    /// the referential condition: an oid in a `Class(C)` position must be a
    /// member of `C` (`nil` allowed only when `allow_nil`).
    ///
    /// Tuple values may carry *more* attributes than the type requires
    /// (refinement): extra fields are ignored.
    pub fn conforms(
        &self,
        schema: &Schema,
        v: &Value,
        ty: &crate::types::TypeDesc,
        allow_nil: bool,
    ) -> Result<(), ModelError> {
        use crate::types::TypeDesc as T;
        let mismatch = |expected: &T, found: &Value| ModelError::TypeMismatch {
            expected: expected.to_string(),
            found: found.to_string(),
        };
        match (ty, v) {
            (T::Int, Value::Int(_)) => Ok(()),
            (T::Str, Value::Str(_)) => Ok(()),
            (T::Domain(d), _) => {
                let inner = schema
                    .domain_type(*d)
                    .ok_or(ModelError::UnknownType(*d))?
                    .clone();
                let expanded = schema.expand(&inner);
                self.conforms(schema, v, &expanded, allow_nil)
            }
            (T::Class(c), Value::Oid(o)) => {
                if self.is_member(*c, *o) {
                    Ok(())
                } else {
                    Err(ModelError::ReferentialViolation(format!(
                        "oid {o} is not a member of class `{c}`"
                    )))
                }
            }
            (T::Class(_), Value::Nil) => {
                if allow_nil {
                    Ok(())
                } else {
                    Err(ModelError::ReferentialViolation(
                        "nil oid inside an association tuple".to_owned(),
                    ))
                }
            }
            (T::Tuple(fields), Value::Tuple(_)) => {
                for f in fields {
                    match v.field(f.label) {
                        Some(fv) => self.conforms(schema, fv, &f.ty, allow_nil)?,
                        None => {
                            return Err(ModelError::TypeMismatch {
                                expected: format!("tuple with label `{}`", f.label),
                                found: v.to_string(),
                            })
                        }
                    }
                }
                Ok(())
            }
            (T::Set(elem), Value::Set(xs)) => {
                for x in xs {
                    self.conforms(schema, x, elem, allow_nil)?;
                }
                Ok(())
            }
            (T::Multiset(elem), Value::Multiset(m)) => {
                for x in m.keys() {
                    self.conforms(schema, x, elem, allow_nil)?;
                }
                Ok(())
            }
            (T::Seq(elem), Value::Seq(xs)) => {
                for x in xs {
                    self.conforms(schema, x, elem, allow_nil)?;
                }
                Ok(())
            }
            _ => Err(mismatch(ty, v)),
        }
    }

    // ----- isomorphism (determinacy up to oid renaming, Appendix B) --------

    /// Best-effort isomorphism check: instances produced by the
    /// deterministic semantics from the same input are *determinate*, i.e.
    /// equal up to renaming of invented oids. This uses 1-dimensional
    /// Weisfeiler–Leman color refinement to canonicalize oids, which is
    /// exact on all instances without non-trivial value-level automorphisms
    /// (the common case for database states).
    pub fn isomorphic(&self, schema: &Schema, other: &Instance) -> bool {
        self.canonical_facts(schema) == other.canonical_facts(schema)
    }

    fn canonical_facts(&self, schema: &Schema) -> Vec<String> {
        // Initial color: classes the oid belongs to + its o-value with oids
        // masked.
        let mut oids: Vec<Oid> = self.nu.keys().copied().collect();
        for s in self.pi.values() {
            oids.extend(s.iter().copied());
        }
        oids.sort();
        oids.dedup();

        let mut color: BTreeMap<Oid, u64> = BTreeMap::new();
        let sig0 = |o: Oid| -> String {
            let mut classes: Vec<&str> = self
                .pi
                .iter()
                .filter(|(_, s)| s.contains(&o))
                .map(|(c, _)| c.as_str())
                .collect();
            classes.sort();
            let masked = self
                .nu
                .get(&o)
                .map(|v| v.rename_oids(&|_| Oid(0)).to_string())
                .unwrap_or_default();
            format!("{classes:?}|{masked}")
        };
        {
            let mut sigs: Vec<(String, Oid)> = oids.iter().map(|&o| (sig0(o), o)).collect();
            sigs.sort();
            let mut next = 0u64;
            let mut last: Option<&str> = None;
            for (s, o) in &sigs {
                if last != Some(s.as_str()) {
                    next += 1;
                    last = Some(s.as_str());
                }
                color.insert(*o, next);
            }
        }

        // Refine: recolor each oid by the colors reachable through its
        // o-value, until stable (bounded by |oids| rounds).
        for _ in 0..oids.len() {
            let recolor = |o: Oid| -> String {
                let base = color[&o];
                let ctx = self
                    .nu
                    .get(&o)
                    .map(|v| {
                        v.rename_oids(&|r| Oid(*color.get(&r).unwrap_or(&0)))
                            .to_string()
                    })
                    .unwrap_or_default();
                format!("{base}|{ctx}")
            };
            let mut sigs: Vec<(String, Oid)> = oids.iter().map(|&o| (recolor(o), o)).collect();
            sigs.sort();
            let mut newc: BTreeMap<Oid, u64> = BTreeMap::new();
            let mut next = 0u64;
            let mut last: Option<&str> = None;
            for (s, o) in &sigs {
                if last != Some(s.as_str()) {
                    next += 1;
                    last = Some(s.as_str());
                }
                newc.insert(*o, next);
            }
            if newc == color {
                break;
            }
            color = newc;
        }

        // Canonical rename: order oids by (final color, then arbitrary but
        // deterministic tiebreak by current id among same-color oids — this
        // is the best-effort part).
        let mut order: Vec<Oid> = oids.clone();
        order.sort_by_key(|o| (color[o], o.0));
        let canon: FxHashMap<Oid, Oid> = order
            .iter()
            .enumerate()
            .map(|(i, o)| (*o, Oid(i as u64)))
            .collect();
        let rename = |o: Oid| *canon.get(&o).unwrap_or(&o);

        let mut out: Vec<String> = self
            .facts(schema)
            .into_iter()
            .map(|f| match f {
                Fact::Class { class, oid, value } => {
                    format!("C|{class}|{}|{}", rename(oid), value.rename_oids(&rename))
                }
                Fact::Assoc { assoc, tuple } => {
                    format!("A|{assoc}|{}", tuple.rename_oids(&rename))
                }
                Fact::Member { fun, args, elem } => format!(
                    "M|{fun}|{:?}|{}",
                    args.iter()
                        .map(|a| a.rename_oids(&rename).to_string())
                        .collect::<Vec<_>>(),
                    elem.rename_oids(&rename)
                ),
            })
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeDesc;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_class("person", TypeDesc::tuple([("name", TypeDesc::Str)]))
            .unwrap();
        s.add_class(
            "student",
            TypeDesc::tuple([
                ("person", TypeDesc::class("person")),
                ("school", TypeDesc::Str),
            ]),
        )
        .unwrap();
        s.add_isa("student", "person", None);
        s.add_assoc(
            "advises",
            TypeDesc::tuple([("who", TypeDesc::class("person"))]),
        )
        .unwrap();
        s.validate().unwrap();
        s
    }

    fn sym(s: &str) -> Sym {
        Sym::new(s)
    }

    #[test]
    fn insert_object_propagates_to_ancestors() {
        let s = schema();
        let mut i = Instance::new();
        let changed = i.insert_object(
            &s,
            sym("student"),
            Oid(1),
            Value::tuple([("name", Value::str("John")), ("school", Value::str("PdM"))]),
        );
        assert!(changed);
        assert!(i.is_member(sym("student"), Oid(1)));
        assert!(i.is_member(sym("person"), Oid(1)));
        // Person view projects onto person attributes only.
        let view = i.o_value_in(&s, sym("person"), Oid(1)).unwrap();
        assert_eq!(view, Value::tuple([("name", Value::str("John"))]));
    }

    #[test]
    fn o_values_merge_attribute_wise() {
        let s = schema();
        let mut i = Instance::new();
        i.insert_object(
            &s,
            sym("person"),
            Oid(1),
            Value::tuple([("name", Value::str("John"))]),
        );
        i.insert_object(
            &s,
            sym("student"),
            Oid(1),
            Value::tuple([("school", Value::str("PdM"))]),
        );
        let full = i.o_value(Oid(1)).unwrap();
        assert_eq!(full.field(sym("name")), Some(&Value::str("John")));
        assert_eq!(full.field(sym("school")), Some(&Value::str("PdM")));
        // Idempotent insert reports no change.
        let changed = i.insert_object(
            &s,
            sym("person"),
            Oid(1),
            Value::tuple([("name", Value::str("John"))]),
        );
        assert!(!changed);
    }

    #[test]
    fn remove_object_cascades_to_subclasses() {
        let s = schema();
        let mut i = Instance::new();
        i.insert_object(
            &s,
            sym("student"),
            Oid(1),
            Value::tuple([("name", Value::str("John")), ("school", Value::str("PdM"))]),
        );
        // Removing from the superclass removes from the subclass too.
        assert!(i.remove_object(&s, sym("person"), Oid(1)));
        assert!(!i.is_member(sym("student"), Oid(1)));
        assert!(!i.is_member(sym("person"), Oid(1)));
        assert!(i.o_value(Oid(1)).is_none());
    }

    #[test]
    fn remove_from_subclass_keeps_superclass_membership() {
        let s = schema();
        let mut i = Instance::new();
        i.insert_object(
            &s,
            sym("student"),
            Oid(1),
            Value::tuple([("name", Value::str("John")), ("school", Value::str("PdM"))]),
        );
        assert!(i.remove_object(&s, sym("student"), Oid(1)));
        assert!(!i.is_member(sym("student"), Oid(1)));
        assert!(i.is_member(sym("person"), Oid(1)));
        assert!(i.o_value(Oid(1)).is_some());
    }

    #[test]
    fn contains_fact_matches_partial_attribute_sets() {
        let s = schema();
        let mut i = Instance::new();
        i.insert_object(
            &s,
            sym("student"),
            Oid(1),
            Value::tuple([("name", Value::str("John")), ("school", Value::str("PdM"))]),
        );
        assert!(i.contains_fact(
            &s,
            &Fact::Class {
                class: sym("person"),
                oid: Oid(1),
                value: Value::tuple([("name", Value::str("John"))]),
            }
        ));
        assert!(!i.contains_fact(
            &s,
            &Fact::Class {
                class: sym("person"),
                oid: Oid(1),
                value: Value::tuple([("name", Value::str("Mary"))]),
            }
        ));
    }

    #[test]
    fn compose_is_right_biased_on_o_values() {
        let s = schema();
        let mut g1 = Instance::new();
        g1.insert_object(
            &s,
            sym("person"),
            Oid(1),
            Value::tuple([("name", Value::str("Old"))]),
        );
        g1.insert_assoc(sym("advises"), Value::tuple([("who", Value::Oid(Oid(1)))]));
        let mut g2 = Instance::new();
        g2.insert_object(
            &s,
            sym("person"),
            Oid(1),
            Value::tuple([("name", Value::str("New"))]),
        );
        let c = g1.compose(&g2);
        assert_eq!(
            c.o_value(Oid(1)).unwrap().field(sym("name")),
            Some(&Value::str("New"))
        );
        // ρ is unioned.
        assert_eq!(c.assoc_len(sym("advises")), 1);
        // Left-biased direction keeps the old value.
        let c2 = g2.compose(&g1);
        assert_eq!(
            c2.o_value(Oid(1)).unwrap().field(sym("name")),
            Some(&Value::str("Old"))
        );
    }

    #[test]
    fn validate_catches_dangling_and_nil_references() {
        let s = schema();
        let mut i = Instance::new();
        // Dangling oid in an association.
        i.insert_assoc(sym("advises"), Value::tuple([("who", Value::Oid(Oid(9)))]));
        let errs = i.validate(&s).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ModelError::ReferentialViolation(_))));

        // Nil in an association is also illegal.
        let mut i2 = Instance::new();
        i2.insert_assoc(sym("advises"), Value::tuple([("who", Value::Nil)]));
        let errs2 = i2.validate(&s).unwrap_err();
        assert!(errs2
            .iter()
            .any(|e| matches!(e, ModelError::ReferentialViolation(_))));
    }

    #[test]
    fn validate_accepts_wellformed_instance() {
        let s = schema();
        let mut i = Instance::new();
        i.insert_object(
            &s,
            sym("person"),
            Oid(1),
            Value::tuple([("name", Value::str("Ceri"))]),
        );
        i.insert_assoc(sym("advises"), Value::tuple([("who", Value::Oid(Oid(1)))]));
        i.validate(&s).expect("well-formed instance validates");
    }

    #[test]
    fn fact_enumeration_is_deterministic_and_projected() {
        let s = schema();
        let mut i = Instance::new();
        i.insert_object(
            &s,
            sym("student"),
            Oid(1),
            Value::tuple([("name", Value::str("John")), ("school", Value::str("PdM"))]),
        );
        let facts = i.facts(&s);
        // One fact for person, one for student.
        assert_eq!(facts.len(), 2);
        assert_eq!(facts, i.facts(&s));
    }

    #[test]
    fn isomorphic_detects_renamed_oids() {
        let s = schema();
        let mut a = Instance::new();
        a.insert_object(
            &s,
            sym("person"),
            Oid(10),
            Value::tuple([("name", Value::str("X"))]),
        );
        let mut b = Instance::new();
        b.insert_object(
            &s,
            sym("person"),
            Oid(99),
            Value::tuple([("name", Value::str("X"))]),
        );
        assert!(a.isomorphic(&s, &b));
        let mut c = Instance::new();
        c.insert_object(
            &s,
            sym("person"),
            Oid(99),
            Value::tuple([("name", Value::str("Y"))]),
        );
        assert!(!a.isomorphic(&s, &c));
    }

    #[test]
    fn function_extensions_behave_as_sets() {
        let mut i = Instance::new();
        let f = sym("desc");
        assert!(i.insert_member(f, vec![Value::Int(1)], Value::Int(2)));
        assert!(!i.insert_member(f, vec![Value::Int(1)], Value::Int(2)));
        assert!(i.fun_contains(f, &[Value::Int(1)], &Value::Int(2)));
        assert_eq!(
            i.fun_value(f, &[Value::Int(1)]),
            Value::set([Value::Int(2)])
        );
        assert_eq!(i.fun_value(f, &[Value::Int(7)]), Value::empty_set());
        assert!(i.remove_member(f, &[Value::Int(1)], &Value::Int(2)));
        assert!(!i.remove_member(f, &[Value::Int(1)], &Value::Int(2)));
    }

    #[test]
    fn arg_index_probes_and_invalidates() {
        let mut i = Instance::new();
        let a = sym("edge");
        let (fa, fb) = (sym("a"), sym("b"));
        for (x, y) in [(1, 2), (1, 3), (2, 3)] {
            i.insert_assoc(
                a,
                Value::tuple([("a", Value::Int(x)), ("b", Value::Int(y))]),
            );
        }
        let bucket = i.tuples_matching(a, fa, &Value::Int(1)).unwrap();
        assert_eq!(bucket.len(), 2);
        assert!(bucket.iter().all(|t| t.field(fa) == Some(&Value::Int(1))));
        assert!(i.tuples_matching(a, fa, &Value::Int(9)).is_none());
        assert_eq!(i.tuples_matching(a, fb, &Value::Int(3)).unwrap().len(), 2);

        // A mutation invalidates the cache; the next probe sees new state.
        i.insert_assoc(
            a,
            Value::tuple([("a", Value::Int(1)), ("b", Value::Int(9))]),
        );
        assert_eq!(i.tuples_matching(a, fa, &Value::Int(1)).unwrap().len(), 3);
        i.remove_assoc(
            a,
            &Value::tuple([("a", Value::Int(1)), ("b", Value::Int(2))]),
        );
        assert_eq!(i.tuples_matching(a, fa, &Value::Int(1)).unwrap().len(), 2);
    }

    #[test]
    fn arg_index_normalizes_tagged_tuples_to_oids() {
        let mut i = Instance::new();
        let a = sym("likes");
        let who = sym("who");
        // A tuple whose `who` field is a tagged class tuple must be found
        // when probed with the bare oid (and vice versa).
        let tagged = Value::tuple([
            (crate::value::SELF_LABEL, Value::Oid(Oid(7))),
            ("name", Value::str("x")),
        ]);
        i.insert_assoc(a, Value::tuple([("who", tagged.clone())]));
        i.insert_assoc(a, Value::tuple([("who", Value::Oid(Oid(8)))]));
        assert_eq!(tagged.index_key(), Value::Oid(Oid(7)));
        assert_eq!(
            i.tuples_matching(a, who, &Value::Oid(Oid(7)))
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            i.tuples_matching(a, who, &Value::Oid(Oid(8)))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn clone_and_eq_ignore_the_index_cache() {
        let mut i = Instance::new();
        let a = sym("edge");
        i.insert_assoc(
            a,
            Value::tuple([("a", Value::Int(1)), ("b", Value::Int(2))]),
        );
        // Warm the cache, then clone: the clone starts cold but compares
        // equal and serves identical probes.
        let _ = i.tuples_matching(a, sym("a"), &Value::Int(1));
        let j = i.clone();
        assert_eq!(i, j);
        assert_eq!(
            j.tuples_matching(a, sym("a"), &Value::Int(1))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn oid_gen_resumes_past_existing_oids() {
        let s = schema();
        let mut i = Instance::new();
        i.insert_object(
            &s,
            sym("person"),
            Oid(41),
            Value::tuple([("name", Value::str("Z"))]),
        );
        let mut g = i.oid_gen();
        assert_eq!(g.fresh(), Oid(42));
    }
}
