#![warn(missing_docs)]

//! # logres-model
//!
//! The LOGRES data model, reproduced from *“Integrating Object-Oriented Data
//! Modeling with a Rule-Based Programming Paradigm”* (Cacace, Ceri,
//! Crespi-Reghizzi, Tanca, Zicari — SIGMOD 1990), Section 2 and Appendix A.
//!
//! A LOGRES database schema is a pair `(Σ, isa)`:
//!
//! * `Σ` maps **domain**, **class** and **association** names to *type
//!   descriptors* built from the elementary types `integer` and `string` and
//!   the tuple `( )`, set `{ }`, multiset `[ ]` and sequence `< >`
//!   constructors ([`TypeDesc`]);
//! * `isa` is a partial order over class names (generalization hierarchies)
//!   whose edges must respect the *refinement* relation `≤` of Appendix A
//!   ([`Schema::refines`]).
//!
//! At the instance level ([`Instance`], Definition 4 of the paper) a database
//! is a triple `(π, ν, ρ)`: an **oid assignment** giving each class a finite
//! set of object identifiers, a partial **o-value assignment** giving each
//! oid its value, and an **association assignment** giving each association a
//! finite set of tuples. This crate implements the legality conditions of
//! Definition 4, the partition of the oid universe into disjoint
//! generalization hierarchies, and the automatic generation of *referential
//! integrity constraints* from type equations (Section 2.1).
//!
//! Set-valued *data functions* (Section 2.1, `F : T1 -> {T2}`) are declared
//! in the schema and their extensions live in the instance, so that the rule
//! engine can populate them via `member(X, f(Y))` literals.

pub mod builder;
pub mod error;
pub mod instance;
pub mod integrity;
pub mod oid;
pub mod parse_value;
pub mod path;
pub mod refine;
pub mod schema;
pub mod sym;
pub mod types;
pub mod value;

pub use builder::SchemaBuilder;
pub use error::ModelError;
pub use instance::{Fact, Instance};
pub use integrity::{IntegrityConstraint, RefTarget, Violation};
pub use oid::{Oid, OidGen};
pub use parse_value::parse_value;
pub use path::{Path, PathStep};
pub use refine::Refiner;
pub use schema::{FunctionSig, PredKind, Schema};
pub use sym::Sym;
pub use types::{Field, TypeDesc};
pub use value::{Value, SELF_LABEL};
