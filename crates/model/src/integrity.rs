//! Referential integrity constraints generated from type equations
//! (Section 2.1 of the paper).
//!
//! If a class `T2` is referenced in the RHS of the type equation of a class
//! `T1`, every oid at that position must identify an existing object of
//! `T2` — or be `nil`. Inside associations, `nil` is illegal: association
//! tuples must reference *existing* objects. The paper generates these
//! constraints automatically by analyzing schema definitions and expresses
//! them in the rule language ("active referential integrity constraints").
//!
//! This module produces, for each class reference in each equation:
//!
//! * a structural [`IntegrityConstraint`] (owner predicate, access path,
//!   target class, nil policy) that can be *checked* against an instance
//!   ([`check`]) — the **passive** reading;
//! * repair actions ([`repair`]) that delete the offending tuples or null
//!   out the offending references — the **active** reading (rules acting as
//!   triggers, cf. Example 4.1);
//! * a rendering as a denial rule of the user language
//!   ([`IntegrityConstraint::as_denial`]) for documentation and for modules
//!   that want constraints as first-class rules.

use crate::instance::Instance;
use crate::oid::Oid;
use crate::path::Path;
use crate::schema::{PredKind, Schema};
use crate::sym::Sym;
use crate::types::TypeDesc;
use crate::value::Value;

/// Whether the constraint guards a class or an association position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefTarget {
    /// Owner is a class: `nil` is a legal stand-in (Section 2.1).
    FromClass,
    /// Owner is an association: every reference must resolve.
    FromAssoc,
}

/// One generated referential constraint: "every oid reached from `owner`
/// through `path` is a member of `target` (or nil, if allowed)".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityConstraint {
    /// Class or association whose tuples are constrained.
    pub owner: Sym,
    /// Access path from the tuple/o-value to the reference.
    pub path: Path,
    /// The referenced class.
    pub target: Sym,
    /// Nil policy, derived from the owner's kind.
    pub kind: RefTarget,
}

impl IntegrityConstraint {
    /// Is `nil` acceptable at the constrained position?
    pub fn nil_allowed(&self) -> bool {
        matches!(self.kind, RefTarget::FromClass)
    }

    /// Render as a denial rule of the user language (Section 4.2's passive
    /// constraints): the constraint fails exactly when the body succeeds.
    pub fn as_denial(&self) -> String {
        format!(
            "<- {}(X), X{} = O, O != nil, not {}(self: O).",
            self.owner, self.path, self.target
        )
    }
}

/// A concrete violation found by [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated constraint.
    pub constraint: IntegrityConstraint,
    /// The offending oid (`None` for an illegal nil in an association).
    pub oid: Option<Oid>,
    /// For associations: the whole offending tuple.
    pub tuple: Option<Value>,
}

/// A repair action computed by [`repair`] (the *active* reading).
#[derive(Debug, Clone, PartialEq, Eq)]
// Field names are self-documenting; variant docs carry the semantics.
#[allow(missing_docs)]
pub enum Repair {
    /// Delete an association tuple containing a dangling or nil reference.
    DeleteTuple { assoc: Sym, tuple: Value },
    /// Replace a dangling class-to-class reference with nil.
    NullifyReference { class: Sym, oid: Oid, path: Path },
}

/// Generate all referential constraints implied by the schema's type
/// equations. Embedded superclass components (inheritance) are *not*
/// reference positions — they were spliced into the effective type — so
/// generation walks effective class types and raw association types.
pub fn generate(schema: &Schema) -> Vec<IntegrityConstraint> {
    let mut out = Vec::new();
    for class in schema.classes() {
        if let Some(eff) = schema.effective(class) {
            let expanded = schema.expand(eff);
            walk(
                class,
                RefTarget::FromClass,
                &expanded,
                Path::root(),
                &mut out,
            );
        }
    }
    for assoc in schema.assocs() {
        if let Some(ty) = schema.assoc_type(assoc) {
            let expanded = schema.expand(ty);
            walk(
                assoc,
                RefTarget::FromAssoc,
                &expanded,
                Path::root(),
                &mut out,
            );
        }
    }
    out.sort_by(|a, b| (a.owner, &a.path).cmp(&(b.owner, &b.path)));
    out
}

fn walk(
    owner: Sym,
    kind: RefTarget,
    ty: &TypeDesc,
    path: Path,
    out: &mut Vec<IntegrityConstraint>,
) {
    match ty {
        TypeDesc::Class(c) => out.push(IntegrityConstraint {
            owner,
            path,
            target: *c,
            kind,
        }),
        TypeDesc::Tuple(fs) => {
            for f in fs {
                walk(owner, kind, &f.ty, path.field(f.label), out);
            }
        }
        TypeDesc::Set(t) | TypeDesc::Multiset(t) | TypeDesc::Seq(t) => {
            walk(owner, kind, t, path.elem(), out);
        }
        TypeDesc::Int | TypeDesc::Str | TypeDesc::Domain(_) => {}
    }
}

/// Check all constraints against an instance; return every violation.
pub fn check(
    schema: &Schema,
    instance: &Instance,
    constraints: &[IntegrityConstraint],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for c in constraints {
        match schema.kind(c.owner) {
            Some(PredKind::Class) => {
                for oid in instance.oids_of(c.owner) {
                    let Some(v) = instance.o_value_in(schema, c.owner, oid) else {
                        continue;
                    };
                    for hit in c.path.resolve(&v) {
                        match hit {
                            Value::Oid(o) if !instance.is_member(c.target, *o) => {
                                out.push(Violation {
                                    constraint: c.clone(),
                                    oid: Some(*o),
                                    tuple: None,
                                });
                            }
                            Value::Nil => {} // legal inside classes
                            _ => {}
                        }
                    }
                }
            }
            Some(PredKind::Assoc) => {
                for t in instance.tuples_of(c.owner) {
                    for hit in c.path.resolve(t) {
                        match hit {
                            Value::Oid(o) if !instance.is_member(c.target, *o) => {
                                out.push(Violation {
                                    constraint: c.clone(),
                                    oid: Some(*o),
                                    tuple: Some(t.clone()),
                                });
                            }
                            Value::Nil => out.push(Violation {
                                constraint: c.clone(),
                                oid: None,
                                tuple: Some(t.clone()),
                            }),
                            _ => {}
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Check the association constraints against just the given added tuples
/// (referential targets still resolve against the full instance). This is
/// the delta form incremental maintenance uses: when the pre-update state
/// was consistent and the update only *added* the listed tuples, the full
/// [`check`] finds a violation iff this one does.
pub fn check_assoc_delta(
    schema: &Schema,
    instance: &Instance,
    constraints: &[IntegrityConstraint],
    added: &[(Sym, Value)],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for c in constraints {
        if schema.kind(c.owner) != Some(PredKind::Assoc) {
            continue;
        }
        for (assoc, t) in added {
            if *assoc != c.owner {
                continue;
            }
            for hit in c.path.resolve(t) {
                match hit {
                    Value::Oid(o) if !instance.is_member(c.target, *o) => {
                        out.push(Violation {
                            constraint: c.clone(),
                            oid: Some(*o),
                            tuple: Some(t.clone()),
                        });
                    }
                    Value::Nil => out.push(Violation {
                        constraint: c.clone(),
                        oid: None,
                        tuple: Some(t.clone()),
                    }),
                    _ => {}
                }
            }
        }
    }
    out
}

/// Compute repair actions for a set of violations (active constraints as
/// triggers): dangling/nil references inside associations delete the tuple;
/// dangling references inside class values are nulled out.
pub fn repair(violations: &[Violation]) -> Vec<Repair> {
    let mut out = Vec::new();
    for v in violations {
        match v.constraint.kind {
            RefTarget::FromAssoc => {
                if let Some(t) = &v.tuple {
                    let r = Repair::DeleteTuple {
                        assoc: v.constraint.owner,
                        tuple: t.clone(),
                    };
                    if !out.contains(&r) {
                        out.push(r);
                    }
                }
            }
            RefTarget::FromClass => {
                // The violating oid sits at `path` inside some object; we
                // need the owning oid, so re-derive it lazily at apply time.
                // Here we record the path-level action keyed by the dangling
                // oid; `apply_repairs` resolves owners.
                if let Some(o) = v.oid {
                    let r = Repair::NullifyReference {
                        class: v.constraint.owner,
                        oid: o,
                        path: v.constraint.path.clone(),
                    };
                    if !out.contains(&r) {
                        out.push(r);
                    }
                }
            }
        }
    }
    out
}

/// Apply repair actions to an instance. Returns the number of changes.
/// Nullification rewrites every occurrence of the dangling oid at the
/// recorded path inside every object of the owning class.
pub fn apply_repairs(schema: &Schema, instance: &mut Instance, repairs: &[Repair]) -> usize {
    let mut n = 0;
    for r in repairs {
        match r {
            Repair::DeleteTuple { assoc, tuple } => {
                if instance.remove_assoc(*assoc, tuple) {
                    n += 1;
                }
            }
            Repair::NullifyReference { class, oid, path } => {
                let owners: Vec<Oid> = instance.oids_of(*class).collect();
                for owner in owners {
                    let Some(v) = instance.o_value(owner).cloned() else {
                        continue;
                    };
                    let rewritten = nullify_at(&v, &path.0, *oid);
                    if rewritten != v {
                        instance.insert_object(schema, *class, owner, rewritten);
                        n += 1;
                    }
                }
            }
        }
    }
    n
}

/// Replace `target` oids with nil along the given path inside `v`.
fn nullify_at(v: &Value, steps: &[crate::path::PathStep], target: Oid) -> Value {
    use crate::path::PathStep;
    if steps.is_empty() {
        return if v.as_oid() == Some(target) {
            Value::Nil
        } else {
            v.clone()
        };
    }
    match (&steps[0], v) {
        (PathStep::Field(l), Value::Tuple(fs)) => Value::Tuple(
            fs.iter()
                .map(|(fl, fv)| {
                    if fl == l {
                        (*fl, nullify_at(fv, &steps[1..], target))
                    } else {
                        (*fl, fv.clone())
                    }
                })
                .collect(),
        ),
        (PathStep::Elem, Value::Set(s)) => Value::Set(
            s.iter()
                .map(|e| nullify_at(e, &steps[1..], target))
                .collect(),
        ),
        (PathStep::Elem, Value::Multiset(m)) => {
            let mut out = std::collections::BTreeMap::new();
            for (e, c) in m {
                *out.entry(nullify_at(e, &steps[1..], target)).or_insert(0) += c;
            }
            Value::Multiset(out)
        }
        (PathStep::Elem, Value::Seq(s)) => Value::Seq(
            s.iter()
                .map(|e| nullify_at(e, &steps[1..], target))
                .collect(),
        ),
        _ => v.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn football() -> Schema {
        let mut s = Schema::new();
        s.add_class("player", TypeDesc::tuple([("name", TypeDesc::Str)]))
            .unwrap();
        s.add_class(
            "team",
            TypeDesc::tuple([
                ("team_name", TypeDesc::Str),
                ("base_players", TypeDesc::seq(TypeDesc::class("player"))),
                ("substitutes", TypeDesc::set(TypeDesc::class("player"))),
            ]),
        )
        .unwrap();
        s.add_assoc(
            "game",
            TypeDesc::tuple([
                ("h_team", TypeDesc::class("team")),
                ("g_team", TypeDesc::class("team")),
                ("date", TypeDesc::Str),
            ]),
        )
        .unwrap();
        s.validate().unwrap();
        s
    }

    fn sym(s: &str) -> Sym {
        Sym::new(s)
    }

    #[test]
    fn generation_finds_every_class_reference() {
        let s = football();
        let cs = generate(&s);
        // team.base_players[*], team.substitutes[*], game.h_team, game.g_team
        assert_eq!(cs.len(), 4);
        assert!(cs.iter().any(|c| c.owner == sym("team")
            && c.path.to_string() == ".base_players[*]"
            && c.target == sym("player")));
        assert!(cs
            .iter()
            .any(|c| c.owner == sym("game") && c.path.to_string() == ".h_team"));
        // Associations forbid nil, classes allow it.
        assert!(cs
            .iter()
            .find(|c| c.owner == sym("game"))
            .is_some_and(|c| !c.nil_allowed()));
        assert!(cs
            .iter()
            .find(|c| c.owner == sym("team"))
            .is_some_and(|c| c.nil_allowed()));
    }

    #[test]
    fn inherited_embeddings_are_not_reference_positions() {
        let mut s = Schema::new();
        s.add_class("person", TypeDesc::tuple([("name", TypeDesc::Str)]))
            .unwrap();
        s.add_class(
            "student",
            TypeDesc::tuple([("person", TypeDesc::class("person"))]),
        )
        .unwrap();
        s.add_isa("student", "person", None);
        s.validate().unwrap();
        let cs = generate(&s);
        assert!(
            cs.is_empty(),
            "embedded superclass must not generate a reference constraint: {cs:?}"
        );
    }

    #[test]
    fn check_reports_dangling_and_nil() {
        let s = football();
        let cs = generate(&s);
        let mut i = Instance::new();
        i.insert_object(
            &s,
            sym("team"),
            Oid(1),
            Value::tuple([
                ("team_name", Value::str("Milan")),
                ("base_players", Value::seq([Value::Oid(Oid(77))])), // dangling
                ("substitutes", Value::empty_set()),
            ]),
        );
        i.insert_assoc(
            sym("game"),
            Value::tuple([
                ("h_team", Value::Oid(Oid(1))),
                ("g_team", Value::Nil), // nil in association: illegal
                ("date", Value::str("1990-05-23")),
            ]),
        );
        let vs = check(&s, &i, &cs);
        assert_eq!(vs.len(), 2);
        assert!(vs.iter().any(|v| v.oid == Some(Oid(77))));
        assert!(vs.iter().any(|v| v.oid.is_none() && v.tuple.is_some()));
    }

    #[test]
    fn nil_inside_class_values_is_legal() {
        let mut s = Schema::new();
        s.add_class("prof", TypeDesc::tuple([("name", TypeDesc::Str)]))
            .unwrap();
        s.add_class(
            "school",
            TypeDesc::tuple([("name", TypeDesc::Str), ("dean", TypeDesc::class("prof"))]),
        )
        .unwrap();
        s.validate().unwrap();
        let cs = generate(&s);
        let mut i = Instance::new();
        i.insert_object(
            &s,
            sym("school"),
            Oid(1),
            Value::tuple([("name", Value::str("PdM")), ("dean", Value::Nil)]),
        );
        assert!(check(&s, &i, &cs).is_empty());
    }

    #[test]
    fn repairs_delete_assoc_tuples_and_nullify_class_refs() {
        let s = football();
        let cs = generate(&s);
        let mut i = Instance::new();
        i.insert_object(
            &s,
            sym("team"),
            Oid(1),
            Value::tuple([
                ("team_name", Value::str("Milan")),
                ("base_players", Value::seq([Value::Oid(Oid(77))])),
                ("substitutes", Value::empty_set()),
            ]),
        );
        i.insert_assoc(
            sym("game"),
            Value::tuple([
                ("h_team", Value::Oid(Oid(1))),
                ("g_team", Value::Oid(Oid(99))),
                ("date", Value::str("d")),
            ]),
        );
        let vs = check(&s, &i, &cs);
        let rs = repair(&vs);
        let n = apply_repairs(&s, &mut i, &rs);
        assert!(n >= 2);
        // Association tuple gone; dangling player nulled.
        assert_eq!(i.assoc_len(sym("game")), 0);
        let v = i.o_value(Oid(1)).unwrap();
        assert_eq!(
            v.field(sym("base_players")),
            Some(&Value::seq([Value::Nil]))
        );
        // Instance is now violation-free.
        assert!(check(&s, &i, &cs).is_empty());
    }

    #[test]
    fn denial_rendering_mentions_owner_and_target() {
        let s = football();
        let cs = generate(&s);
        let d = cs
            .iter()
            .find(|c| c.owner == sym("game") && c.path.to_string() == ".h_team")
            .unwrap()
            .as_denial();
        assert!(d.contains("game(X)"));
        assert!(d.contains("not team(self: O)"));
    }
}
