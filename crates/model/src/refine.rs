//! The refinement relation `τ1 ≤ τ2` of Appendix A.
//!
//! A type `τ1` is a refinement of `τ2` iff one of:
//!
//! 1. `τ1 ∈ D ∪ C ∪ {I, S}` and `τ1 = τ2`;
//! 2. `τ1 ∈ D ∪ C` and `Σ(τ1) ≤ τ2`;
//! 3. `τ1, τ2 ∈ C` and `Σ(τ1) ≤ Σ(τ2)`;
//! 4. tuples: `τ1 = (L_i: τ1_i) i≤p`, `τ2 = (L_k: τ2_k) k≤q`, `q ≤ p` and
//!    every label of `τ2` occurs in `τ1` with a component refining the
//!    corresponding `τ2` component (width + depth subtyping);
//! 5. sets: `{τ'1} ≤ {τ'2}` iff `τ'1 ≤ τ'2`;
//! 6. multisets, covariantly;
//! 7. sequences, covariantly.
//!
//! Classes may be mutually recursive (`SCHOOL` references `PROFESSOR` and
//! vice versa), so rule 3 is interpreted coinductively: a pair that is
//! already being examined is assumed to hold (greatest fixpoint).

use rustc_hash::FxHashSet;

use crate::schema::Schema;
use crate::sym::Sym;
use crate::types::TypeDesc;

/// A refinement checker carrying the coinductive assumption set.
pub struct Refiner<'s> {
    schema: &'s Schema,
    /// Class pairs currently being examined (coinductive hypothesis).
    assuming: FxHashSet<(Sym, Sym)>,
}

impl<'s> Refiner<'s> {
    /// New checker over a schema.
    pub fn new(schema: &'s Schema) -> Refiner<'s> {
        Refiner {
            schema,
            assuming: FxHashSet::default(),
        }
    }

    /// Resolve the structure a named type refines through (rule 2/3):
    /// effective type for classes (inheritance expanded), Σ otherwise.
    fn structure_of(&self, name: Sym) -> Option<TypeDesc> {
        if let Some(eff) = self.schema.effective(name) {
            return Some(eff.clone());
        }
        self.schema.sigma(name).cloned()
    }

    /// `t1 ≤ t2`?
    pub fn refines(&mut self, t1: &TypeDesc, t2: &TypeDesc) -> bool {
        use TypeDesc::*;
        // Rule 1: identical elementary/named types.
        if t1 == t2 {
            match t1 {
                Int | Str | Domain(_) | Class(_) => return true,
                _ => {}
            }
        }
        match (t1, t2) {
            // Rule 3 (+ isa fast path): both classes.
            (Class(c1), Class(c2)) => {
                if self.schema.isa_holds(*c1, *c2) {
                    return true;
                }
                if self.assuming.contains(&(*c1, *c2)) {
                    return true; // coinductive hypothesis
                }
                self.assuming.insert((*c1, *c2));
                let r = match (self.structure_of(*c1), self.structure_of(*c2)) {
                    (Some(s1), Some(s2)) => self.refines(&s1, &s2),
                    _ => false,
                };
                self.assuming.remove(&(*c1, *c2));
                r
            }
            // Rule 2: named type on the left unfolds.
            (Domain(d), _) => match self.schema.domain_type(*d) {
                Some(s) => {
                    let s = s.clone();
                    self.refines(&s, t2)
                }
                None => false,
            },
            (Class(c), _) => match self.structure_of(*c) {
                Some(s) => {
                    if self.assuming.contains(&(*c, *c)) {
                        return false;
                    }
                    self.refines(&s, t2)
                }
                None => false,
            },
            // Symmetric convenience (not in the paper's listing but implied
            // by domain refinement being definitional): a structural type on
            // the left may refine a *domain* name on the right by unfolding
            // the right side. Without this, `(integer, integer) ≤ SCORE`
            // would fail even though SCORE = (integer, integer) defines the
            // same domain. Classes on the right are NOT unfolded: class
            // membership is nominal (oids).
            (_, Domain(d)) => match self.schema.domain_type(*d) {
                Some(s) => {
                    let s = s.clone();
                    self.refines(t1, &s)
                }
                None => false,
            },
            // Rule 4: tuples, width + depth.
            (Tuple(fs1), Tuple(fs2)) => {
                if fs2.len() > fs1.len() {
                    return false;
                }
                fs2.iter().all(|f2| {
                    fs1.iter()
                        .find(|f1| f1.label == f2.label)
                        .is_some_and(|f1| {
                            let (a, b) = (f1.ty.clone(), f2.ty.clone());
                            self.refines(&a, &b)
                        })
                })
            }
            // Rules 5–7: collection constructors, covariant.
            (Set(a), Set(b)) | (Multiset(a), Multiset(b)) | (Seq(a), Seq(b)) => {
                let (a, b) = (a.as_ref().clone(), b.as_ref().clone());
                self.refines(&a, &b)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_domain(
            "score",
            TypeDesc::tuple([("a", TypeDesc::Int), ("b", TypeDesc::Int)]),
        )
        .unwrap();
        s.add_class(
            "person",
            TypeDesc::tuple([("name", TypeDesc::Str), ("bdate", TypeDesc::Str)]),
        )
        .unwrap();
        s.add_class(
            "student",
            TypeDesc::tuple([
                ("person", TypeDesc::class("person")),
                ("school", TypeDesc::Str),
            ]),
        )
        .unwrap();
        s.add_isa("student", "person", None);
        // Mutually recursive classes (professor <-> school_c).
        s.add_class(
            "professor",
            TypeDesc::tuple([
                ("name", TypeDesc::Str),
                ("works", TypeDesc::class("school_c")),
            ]),
        )
        .unwrap();
        s.add_class(
            "school_c",
            TypeDesc::tuple([
                ("sname", TypeDesc::Str),
                ("dean", TypeDesc::class("professor")),
            ]),
        )
        .unwrap();
        s.validate().unwrap();
        s
    }

    #[test]
    fn rule1_identity_on_elementary_and_named() {
        let s = schema();
        assert!(s.refines(&TypeDesc::Int, &TypeDesc::Int));
        assert!(s.refines(&TypeDesc::domain("score"), &TypeDesc::domain("score")));
        assert!(!s.refines(&TypeDesc::Int, &TypeDesc::Str));
    }

    #[test]
    fn rule2_named_types_unfold_on_the_left() {
        let s = schema();
        // score ≤ (a: integer, b: integer)
        assert!(s.refines(
            &TypeDesc::domain("score"),
            &TypeDesc::tuple([("a", TypeDesc::Int), ("b", TypeDesc::Int)])
        ));
        // score ≤ (a: integer)  — width subtyping after unfolding
        assert!(s.refines(
            &TypeDesc::domain("score"),
            &TypeDesc::tuple([("a", TypeDesc::Int)])
        ));
    }

    #[test]
    fn rule3_subclass_refines_superclass() {
        let s = schema();
        assert!(s.refines(&TypeDesc::class("student"), &TypeDesc::class("person")));
        assert!(!s.refines(&TypeDesc::class("person"), &TypeDesc::class("student")));
    }

    #[test]
    fn rule4_width_and_depth_subtyping() {
        let s = schema();
        let wide = TypeDesc::tuple([("x", TypeDesc::class("student")), ("y", TypeDesc::Int)]);
        let narrow = TypeDesc::tuple([("x", TypeDesc::class("person"))]);
        assert!(s.refines(&wide, &narrow));
        assert!(!s.refines(&narrow, &wide));
        // Label mismatch fails even with right arity.
        let other = TypeDesc::tuple([("z", TypeDesc::class("person"))]);
        assert!(!s.refines(&wide, &other));
    }

    #[test]
    fn rules_5_to_7_collections_are_covariant() {
        let s = schema();
        let sub = TypeDesc::class("student");
        let sup = TypeDesc::class("person");
        assert!(s.refines(&TypeDesc::set(sub.clone()), &TypeDesc::set(sup.clone())));
        assert!(s.refines(
            &TypeDesc::multiset(sub.clone()),
            &TypeDesc::multiset(sup.clone())
        ));
        assert!(s.refines(&TypeDesc::seq(sub.clone()), &TypeDesc::seq(sup.clone())));
        // Different constructors never refine each other.
        assert!(!s.refines(
            &TypeDesc::set(sub.clone()),
            &TypeDesc::multiset(sup.clone())
        ));
        assert!(!s.refines(&TypeDesc::seq(sub), &TypeDesc::set(sup)));
    }

    #[test]
    fn recursive_classes_do_not_diverge() {
        let s = schema();
        // professor and school_c reference each other; comparing them should
        // terminate (and be false: different labels).
        assert!(!s.refines(&TypeDesc::class("professor"), &TypeDesc::class("school_c")));
        // Every class refines itself structurally.
        assert!(s.refines(&TypeDesc::class("professor"), &TypeDesc::class("professor")));
    }

    #[test]
    fn structural_tuple_refines_domain_name() {
        let s = schema();
        assert!(s.refines(
            &TypeDesc::tuple([("a", TypeDesc::Int), ("b", TypeDesc::Int)]),
            &TypeDesc::domain("score")
        ));
    }

    #[test]
    fn compatibility_is_symmetric_refinement() {
        let s = schema();
        let t1 = TypeDesc::class("student");
        let t2 = TypeDesc::class("person");
        assert!(s.compatible(&t1, &t2));
        assert!(s.compatible(&t2, &t1));
        assert!(!s.compatible(&TypeDesc::Int, &TypeDesc::Str));
    }
}
