//! Access paths into nested values.
//!
//! Integrity-constraint generation walks type equations down to each class
//! reference; the resulting [`Path`] can then be evaluated against a value to
//! enumerate all oids sitting at that position (including those inside set,
//! multiset and sequence constructors).

use std::fmt;

use crate::sym::Sym;
use crate::value::Value;

/// One navigation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathStep {
    /// Enter a tuple field with this label.
    Field(Sym),
    /// Enter the elements of a set / multiset / sequence.
    Elem,
}

/// A sequence of navigation steps from the top of a value.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path(pub Vec<PathStep>);

impl Path {
    /// The empty path (the value itself).
    pub fn root() -> Path {
        Path(Vec::new())
    }

    /// Extend with a field step.
    pub fn field(&self, label: Sym) -> Path {
        let mut p = self.clone();
        p.0.push(PathStep::Field(label));
        p
    }

    /// Extend with an element step.
    pub fn elem(&self) -> Path {
        let mut p = self.clone();
        p.0.push(PathStep::Elem);
        p
    }

    /// Collect every value reachable by following this path. `Elem` steps
    /// fan out over all elements, so the result is a set of positions.
    pub fn resolve<'v>(&self, v: &'v Value) -> Vec<&'v Value> {
        let mut frontier = vec![v];
        for step in &self.0 {
            let mut next = Vec::new();
            for cur in frontier {
                match (step, cur) {
                    (PathStep::Field(l), Value::Tuple(fs)) => {
                        if let Ok(i) = fs.binary_search_by(|(fl, _)| fl.cmp(l)) {
                            next.push(&fs[i].1);
                        }
                    }
                    (PathStep::Elem, Value::Set(s)) => next.extend(s.iter()),
                    (PathStep::Elem, Value::Multiset(m)) => next.extend(m.keys()),
                    (PathStep::Elem, Value::Seq(s)) => next.extend(s.iter()),
                    // A mismatched step yields nothing at this position.
                    _ => {}
                }
            }
            frontier = next;
        }
        frontier
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str(".");
        }
        for step in &self.0 {
            match step {
                PathStep::Field(l) => write!(f, ".{l}")?,
                PathStep::Elem => f.write_str("[*]")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::Oid;

    #[test]
    fn resolve_walks_fields_and_elements() {
        let v = Value::tuple([
            ("name", Value::str("Milan")),
            (
                "base_players",
                Value::seq([Value::Oid(Oid(1)), Value::Oid(Oid(2))]),
            ),
        ]);
        let p = Path::root().field(Sym::new("base_players")).elem();
        let hits = p.resolve(&v);
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&&Value::Oid(Oid(1))));
    }

    #[test]
    fn resolve_on_missing_field_is_empty() {
        let v = Value::tuple([("a", Value::Int(1))]);
        assert!(Path::root().field(Sym::new("b")).resolve(&v).is_empty());
    }

    #[test]
    fn display_is_readable() {
        let p = Path::root().field(Sym::new("subs")).elem();
        assert_eq!(p.to_string(), ".subs[*]");
        assert_eq!(Path::root().to_string(), ".");
    }
}
