//! Fluent schema construction.
//!
//! The textual language (crate `logres-lang`) is the primary way to define
//! schemas; this builder is the programmatic equivalent used by examples,
//! tests and workload generators. It panics on structurally invalid input
//! at `build` time only via the returned error, never mid-chain.

use crate::error::ModelError;
use crate::schema::{FunctionSig, Schema};
use crate::sym::Sym;
use crate::types::TypeDesc;

/// Builder collecting type equations, isa declarations and functions, then
/// validating the whole schema at once.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    schema: Schema,
    errors: Vec<ModelError>,
}

impl SchemaBuilder {
    /// Start an empty schema.
    pub fn new() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// `name = ty` in the domains section.
    pub fn domain(mut self, name: &str, ty: TypeDesc) -> Self {
        if let Err(e) = self.schema.add_domain(name, ty) {
            self.errors.push(e);
        }
        self
    }

    /// `name = (fields…)` in the classes section.
    pub fn class<const N: usize>(mut self, name: &str, fields: [(&str, TypeDesc); N]) -> Self {
        if let Err(e) = self.schema.add_class(name, TypeDesc::tuple(fields)) {
            self.errors.push(e);
        }
        self
    }

    /// `name = (fields…)` in the associations section.
    pub fn assoc<const N: usize>(mut self, name: &str, fields: [(&str, TypeDesc); N]) -> Self {
        if let Err(e) = self.schema.add_assoc(name, TypeDesc::tuple(fields)) {
            self.errors.push(e);
        }
        self
    }

    /// `sub isa sup`.
    pub fn isa(mut self, sub: &str, sup: &str) -> Self {
        self.schema.add_isa(sub, sup, None);
        self
    }

    /// `sub via-label isa sup` (disambiguated embedding, cf. `EMPL emp ISA
    /// PERSON`).
    pub fn isa_via(mut self, sub: &str, via: &str, sup: &str) -> Self {
        self.schema.add_isa(sub, sup, Some(Sym::new(via)));
        self
    }

    /// Rename an inherited attribute (multiple-inheritance conflicts).
    pub fn rename(mut self, class: &str, old: &str, new: &str) -> Self {
        self.schema.add_rename(class, old, new);
        self
    }

    /// `name: p1 * … * pn -> {result}` in the functions section.
    pub fn function(mut self, name: &str, params: Vec<TypeDesc>, result_elem: TypeDesc) -> Self {
        if let Err(e) = self.schema.add_function(
            name,
            FunctionSig {
                params,
                result_elem,
            },
        ) {
            self.errors.push(e);
        }
        self
    }

    /// Validate and return the schema.
    pub fn build(mut self) -> Result<Schema, Vec<ModelError>> {
        if !self.errors.is_empty() {
            return Err(self.errors);
        }
        self.schema.validate()?;
        Ok(self.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_the_football_schema_of_example_2_1() {
        // Example 2.1 of the paper, transliterated.
        let schema = SchemaBuilder::new()
            .domain("name_d", TypeDesc::Str)
            .domain("role", TypeDesc::Int)
            .domain("date", TypeDesc::Str)
            .domain(
                "score",
                TypeDesc::tuple([("home", TypeDesc::Int), ("guest", TypeDesc::Int)]),
            )
            .class(
                "player",
                [
                    ("name", TypeDesc::domain("name_d")),
                    ("roles", TypeDesc::set(TypeDesc::domain("role"))),
                ],
            )
            .class(
                "team",
                [
                    ("team_name", TypeDesc::domain("name_d")),
                    ("base_players", TypeDesc::seq(TypeDesc::class("player"))),
                    ("substitutes", TypeDesc::set(TypeDesc::class("player"))),
                ],
            )
            .assoc(
                "game",
                [
                    ("h_team", TypeDesc::class("team")),
                    ("g_team", TypeDesc::class("team")),
                    ("date", TypeDesc::domain("date")),
                    ("score", TypeDesc::domain("score")),
                ],
            )
            .build()
            .expect("Example 2.1 schema is legal");
        assert!(schema.is_validated());
        assert_eq!(schema.classes().count(), 2);
        assert_eq!(schema.assocs().count(), 1);
    }

    #[test]
    fn builder_collects_errors() {
        let err = SchemaBuilder::new()
            .domain("d", TypeDesc::Int)
            .domain("d", TypeDesc::Str) // duplicate
            .build()
            .unwrap_err();
        assert!(matches!(err[0], ModelError::DuplicateName(_)));
    }

    #[test]
    fn functions_are_declared_with_signatures() {
        let schema = SchemaBuilder::new()
            .class("person", [("name", TypeDesc::Str)])
            .function(
                "desc",
                vec![TypeDesc::class("person")],
                TypeDesc::class("person"),
            )
            .function("junior", vec![], TypeDesc::class("person"))
            .build()
            .unwrap();
        let sig = schema.function(Sym::new("desc")).unwrap();
        assert_eq!(sig.params.len(), 1);
        let nullary = schema.function(Sym::new("junior")).unwrap();
        assert!(nullary.params.is_empty());
    }

    #[test]
    fn isa_via_disambiguates_double_embedding() {
        // EMPL = (emp: PERSON, manager: PERSON); EMPL emp ISA PERSON.
        let schema = SchemaBuilder::new()
            .class("person", [("name", TypeDesc::Str)])
            .class(
                "empl",
                [
                    ("emp", TypeDesc::class("person")),
                    ("manager", TypeDesc::class("person")),
                ],
            )
            .isa_via("empl", "emp", "person")
            .build()
            .expect("labeled isa resolves the ambiguity");
        let eff = schema.effective(Sym::new("empl")).unwrap();
        let labels: Vec<&str> = eff
            .as_tuple()
            .unwrap()
            .iter()
            .map(|f| f.label.as_str())
            .collect();
        // emp embedding spliced to `name`; manager stays an oid reference.
        assert_eq!(labels, vec!["name", "manager"]);
    }

    #[test]
    fn ambiguous_unlabeled_double_embedding_errors() {
        let err = SchemaBuilder::new()
            .class("person", [("name", TypeDesc::Str)])
            .class(
                "empl",
                [
                    ("emp", TypeDesc::class("person")),
                    ("manager", TypeDesc::class("person")),
                ],
            )
            .isa("empl", "person")
            .build()
            .unwrap_err();
        assert!(!err.is_empty());
    }
}
