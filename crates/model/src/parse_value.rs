//! Parsing values back from their [`std::fmt::Display`] form.
//!
//! The grammar is exactly what `Value`'s `Display` produces:
//!
//! ```text
//! value := INT | STRING | '&' INT | 'nil'
//!        | '(' label ':' value (',' label ':' value)* ')'
//!        | '{' [value (',' value)*] '}'
//!        | '[' [value (',' value)*] ']'
//!        | '<' [value (',' value)*] '>'
//! ```
//!
//! Used by the persistence layer (`logres::persist`) to round-trip database
//! states through text, and generally handy for tests and tools.

use crate::oid::Oid;
use crate::sym::Sym;
use crate::value::Value;

/// Parse a value from its display form. Returns the value and the number of
/// bytes consumed.
pub fn parse_value(src: &str) -> Result<Value, String> {
    let mut p = P {
        s: src.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(format!(
            "trailing input after value at byte {}: {:?}",
            p.i,
            &src[p.i..]
        ));
    }
    Ok(v)
}

struct P<'a> {
    s: &'a [u8],
    i: usize,
}

impl P<'_> {
    fn ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.s.get(self.i).map(|b| *b as char)
    }

    fn eat(&mut self, c: char) -> Result<(), String> {
        self.ws();
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{c}` at byte {}, found {:?}",
                self.i,
                self.peek()
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.ws();
        match self.peek() {
            Some('n') => {
                if self.s[self.i..].starts_with(b"nil") {
                    self.i += 3;
                    Ok(Value::Nil)
                } else {
                    Err(format!("expected `nil` at byte {}", self.i))
                }
            }
            Some('&') => {
                self.i += 1;
                let n = self.integer()?;
                u64::try_from(n)
                    .map(|n| Value::Oid(Oid(n)))
                    .map_err(|_| "negative oid".to_owned())
            }
            Some('"') => self.string().map(Value::Str),
            Some(c) if c.is_ascii_digit() || c == '-' => self.integer().map(Value::Int),
            Some('(') => {
                self.eat('(')?;
                let mut fields = Vec::new();
                self.ws();
                if self.peek() != Some(')') {
                    loop {
                        let label = self.label()?;
                        self.eat(':')?;
                        let v = self.value()?;
                        fields.push((label, v));
                        self.ws();
                        if self.peek() == Some(',') {
                            self.i += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.eat(')')?;
                Ok(Value::tuple(fields))
            }
            Some('{') => {
                let vs = self.seq_of('{', '}')?;
                Ok(Value::set(vs))
            }
            Some('[') => {
                let vs = self.seq_of('[', ']')?;
                Ok(Value::multiset(vs))
            }
            Some('<') => {
                let vs = self.seq_of('<', '>')?;
                Ok(Value::seq(vs))
            }
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn seq_of(&mut self, open: char, close: char) -> Result<Vec<Value>, String> {
        self.eat(open)?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() != Some(close) {
            loop {
                out.push(self.value()?);
                self.ws();
                if self.peek() == Some(',') {
                    self.i += 1;
                } else {
                    break;
                }
            }
        }
        self.eat(close)?;
        Ok(out)
    }

    fn integer(&mut self) -> Result<i64, String> {
        self.ws();
        let start = self.i;
        if self.peek() == Some('-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad integer at byte {start}"))
    }

    fn label(&mut self) -> Result<Sym, String> {
        self.ws();
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '@')
        {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected a label at byte {start}"));
        }
        Ok(Sym::new(
            std::str::from_utf8(&self.s[start..self.i]).expect("ascii label"),
        ))
    }

    /// Rust-debug-escaped string literal.
    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_owned());
            };
            self.i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("dangling escape".to_owned());
                    };
                    self.i += 1;
                    match esc {
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        '0' => out.push('\0'),
                        '\'' => out.push('\''),
                        'u' => {
                            // \u{hex}
                            self.eat('{')?;
                            let start = self.i;
                            while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                                self.i += 1;
                            }
                            let hex = std::str::from_utf8(&self.s[start..self.i]).expect("hex");
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad unicode escape: {e}"))?;
                            out.push(
                                char::from_u32(code).ok_or("invalid unicode scalar".to_owned())?,
                            );
                            self.eat('}')?;
                        }
                        other => out.push(other),
                    }
                }
                other => {
                    // Multi-byte characters: copy the full UTF-8 sequence.
                    if other.is_ascii() {
                        out.push(other);
                    } else {
                        // Back up and decode properly.
                        self.i -= 1;
                        let rest =
                            std::str::from_utf8(&self.s[self.i..]).map_err(|e| e.to_string())?;
                        let ch = rest.chars().next().expect("non-empty");
                        out.push(ch);
                        self.i += ch.len_utf8();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(v: &Value) {
        let text = v.to_string();
        let parsed = parse_value(&text).unwrap_or_else(|e| panic!("failed to parse {text:?}: {e}"));
        assert_eq!(&parsed, v, "round-trip through {text:?}");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Int(0),
            Value::Int(-42),
            Value::str("hello"),
            Value::str("with \"quotes\" and \\ and \n"),
            Value::str("unicode: ü → λ"),
            Value::Oid(Oid(7)),
            Value::Nil,
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = Value::tuple([
            ("name", Value::str("x")),
            ("roles", Value::set([Value::Int(1), Value::Int(2)])),
            ("bag", Value::multiset([Value::Int(1), Value::Int(1)])),
            (
                "seq",
                Value::seq([Value::Oid(Oid(1)), Value::Nil, Value::empty_set()]),
            ),
        ]);
        round_trip(&v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("(a: )").is_err());
        assert!(parse_value("&-1").is_err());
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("").is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn display_parse_round_trips(v in arb_value()) {
            round_trip(&v);
        }
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            any::<i64>().prop_map(Value::Int),
            // Printable-ish strings incl. escapes and unicode.
            "[ -~\u{e0}-\u{ff}]{0,12}".prop_map(Value::str),
            (0u64..1000).prop_map(|i| Value::Oid(Oid(i))),
            Just(Value::Nil),
        ];
        leaf.prop_recursive(3, 32, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::set),
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::multiset),
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::seq),
                proptest::collection::vec(inner, 1..4).prop_map(|vs| {
                    Value::tuple(
                        vs.into_iter()
                            .enumerate()
                            .map(|(i, v)| (format!("f{i}"), v))
                            .collect::<Vec<_>>(),
                    )
                }),
            ]
        })
    }
}
