//! Error type for schema and instance validation.

use std::fmt;

use crate::sym::Sym;

/// Everything that can go wrong while building or validating LOGRES schemas
/// and instances (Section 2 / Appendix A of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
// Field names are self-documenting; variant docs carry the semantics.
#[allow(missing_docs)]
pub enum ModelError {
    /// A name was defined twice in the same namespace, or reused across the
    /// disjoint namespaces `D`, `C`, `A`.
    DuplicateName(Sym),
    /// A type equation references a name that has no defining equation.
    UnknownType(Sym),
    /// A predicate (class/association/function) name is not in the schema.
    UnknownPredicate(Sym),
    /// Labels inside a single tuple constructor must be unique (the paper's
    /// labeling mechanism exists precisely to distinguish repeated types).
    DuplicateLabel { owner: Sym, label: Sym },
    /// Domain equations may not contain class names (Definition 2).
    ClassInDomain { domain: Sym, class: Sym },
    /// Associations may not contain other associations (Section 2.1).
    AssocInType { owner: Sym, assoc: Sym },
    /// Domain equations must expand finitely: cycles among domain references
    /// would give values of unbounded size.
    RecursiveDomain(Sym),
    /// The top level of a class or association equation must be a tuple: its
    /// elements are tuples of attributes and oids.
    NonTupleTop(Sym),
    /// `C1 isa C2` requires `Σ(C1) ≤ Σ(C2)` (Definition 2).
    IsaWithoutRefinement { sub: Sym, sup: Sym },
    /// The `isa` relation must be a partial order; a cycle was found.
    IsaCycle(Sym),
    /// Multiple inheritance is only allowed among classes sharing a common
    /// ancestor (Section 2.1): no universal class is postulated.
    NoCommonAncestor { class: Sym, parents: (Sym, Sym) },
    /// Two inherited attributes clash and no renaming was provided
    /// (Section 2.1's renaming policy).
    InheritanceConflict { class: Sym, label: Sym },
    /// A value does not conform to the expected type descriptor.
    TypeMismatch { expected: String, found: String },
    /// An oid was used for a class it does not belong to.
    ForeignOid { class: Sym },
    /// An instance violates condition (a) of Definition 4: `C isa C'` but
    /// `π(C) ⊄ π(C')`.
    IsaInclusionViolated { sub: Sym, sup: Sym },
    /// Condition (b) of Definition 4: two classes share oids but live in
    /// different generalization hierarchies.
    HierarchyPartitionViolated { c1: Sym, c2: Sym },
    /// An oid present in some `π(C)` has no o-value.
    MissingOValue { class: Sym },
    /// Referential integrity: a nil oid inside an association tuple, or a
    /// dangling reference (Section 2.1).
    ReferentialViolation(String),
    /// A function signature's result type must be a set type `{T}`.
    NonSetFunctionResult(Sym),
    /// Catch-all with context for composite validation reports.
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ModelError::*;
        match self {
            DuplicateName(n) => write!(f, "name `{n}` defined more than once"),
            UnknownType(n) => write!(f, "reference to undefined type `{n}`"),
            UnknownPredicate(n) => write!(f, "reference to undefined predicate `{n}`"),
            DuplicateLabel { owner, label } => {
                write!(f, "duplicate label `{label}` in type equation of `{owner}`")
            }
            ClassInDomain { domain, class } => {
                write!(f, "domain `{domain}` references class `{class}` (Definition 2 forbids class names in domains)")
            }
            AssocInType { owner, assoc } => {
                write!(f, "type equation of `{owner}` references association `{assoc}` (associations cannot be nested)")
            }
            RecursiveDomain(d) => write!(f, "domain `{d}` is recursively defined"),
            NonTupleTop(n) => write!(
                f,
                "type equation of `{n}` must have a tuple constructor at top level"
            ),
            IsaWithoutRefinement { sub, sup } => {
                write!(
                    f,
                    "`{sub} isa {sup}` declared but Σ({sub}) is not a refinement of Σ({sup})"
                )
            }
            IsaCycle(c) => write!(f, "isa hierarchy contains a cycle through `{c}`"),
            NoCommonAncestor { class, parents } => write!(
                f,
                "multiple inheritance of `{class}` from `{}` and `{}` without a common ancestor",
                parents.0, parents.1
            ),
            InheritanceConflict { class, label } => write!(
                f,
                "class `{class}` inherits conflicting attribute `{label}`; provide a renaming"
            ),
            TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ForeignOid { class } => write!(f, "oid does not belong to class `{class}`"),
            IsaInclusionViolated { sub, sup } => {
                write!(f, "π({sub}) ⊄ π({sup}) despite `{sub} isa {sup}`")
            }
            HierarchyPartitionViolated { c1, c2 } => write!(
                f,
                "classes `{c1}` and `{c2}` share oids but have no common ancestor"
            ),
            MissingOValue { class } => {
                write!(f, "an oid of class `{class}` has no o-value assignment")
            }
            ReferentialViolation(msg) => write!(f, "referential integrity violation: {msg}"),
            NonSetFunctionResult(name) => {
                write!(
                    f,
                    "data function `{name}` must have a set result type {{T}}"
                )
            }
            Invalid(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_names() {
        let e = ModelError::ClassInDomain {
            domain: Sym::new("score"),
            class: Sym::new("team"),
        };
        let msg = e.to_string();
        assert!(msg.contains("score") && msg.contains("team"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&ModelError::RecursiveDomain(Sym::new("d")));
    }
}
