//! LOGRES schemas: type equations plus an `isa` hierarchy (Definition 2).
//!
//! A schema is a pair `(Σ, isa)` where `Σ` maps domain, class and
//! association names to type descriptors and `isa` is a partial order over
//! class names. Validation enforces all structural properties from
//! Section 2 / Appendix A of the paper:
//!
//! * the three name spaces are disjoint;
//! * domain equations contain no class names and expand finitely;
//! * class and association equations are tuples at top level;
//! * associations are never nested inside other type equations;
//! * `C1 isa C2` implies `Σ(C1) ≤ Σ(C2)` (refinement);
//! * multiple inheritance only among classes sharing a common ancestor, with
//!   a renaming policy for attribute conflicts;
//! * data functions `F : T1 -> {T2}` have set-valued results.
//!
//! # Inheritance by embedding
//!
//! The paper writes `STUDENT = (PERSON, SCHOOL); STUDENT isa PERSON` and then
//! treats `bdate` and `address` as attributes of `STUDENT` ("by virtue of the
//! classic inheritance property"). We model this faithfully: when a class
//! `C` declares `C isa P` and `Σ(C)` has a component of type `P` (designated
//! by the `via` label when there are several, cf. `EMPL emp ISA PERSON`),
//! that component is an *embedding* and `P`'s attributes are spliced into
//! `C`'s **effective type**. Classes may instead redeclare all inherited
//! attributes ("flat" isa); validation accepts either form as long as the
//! refinement condition holds on effective types.

use rustc_hash::{FxHashMap, FxHashSet};
use std::fmt;

use crate::error::ModelError;
use crate::refine::Refiner;
use crate::sym::Sym;
use crate::types::{Field, TypeDesc};

/// What kind of thing a name denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredKind {
    /// A domain (type constructor; not a first-class predicate).
    Domain,
    /// A class of objects with oids.
    Class,
    /// A value-based association (NF² relation).
    Assoc,
    /// A set-valued data function.
    Function,
}

/// Signature of a set-valued data function `F : T1 × … × Tn -> {T}`
/// (Section 2.1; nullary functions name the extension of a type).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSig {
    /// Argument types (empty for nullary functions such as `junior`).
    pub params: Vec<TypeDesc>,
    /// The element type `T` of the `{T}` result.
    pub result_elem: TypeDesc,
}

/// A direct `isa` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsaEdge {
    /// Subclass.
    pub sub: Sym,
    /// Superclass.
    pub sup: Sym,
    /// The label of the embedded superclass component inside `Σ(sub)`, when
    /// inheritance is by embedding (`EMPL emp ISA PERSON`). `None` selects
    /// the unique component of type `sup` automatically, or flat isa if no
    /// such component exists.
    pub via: Option<Sym>,
}

/// An attribute renaming used to resolve multiple-inheritance conflicts
/// (Section 2.1's renaming policy): in class `class`, the attribute
/// inherited as `old` is exposed as `new`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rename {
    /// The inheriting class the rename applies to.
    pub class: Sym,
    /// The inherited attribute's original label.
    pub old: Sym,
    /// The label it is exposed under.
    pub new: Sym,
}

/// A validated LOGRES schema.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    domains: FxHashMap<Sym, TypeDesc>,
    classes: FxHashMap<Sym, TypeDesc>,
    assocs: FxHashMap<Sym, TypeDesc>,
    functions: FxHashMap<Sym, FunctionSig>,
    isa_edges: Vec<IsaEdge>,
    renames: Vec<Rename>,
    /// Strict transitive ancestors per class (computed by `validate`).
    ancestors: FxHashMap<Sym, FxHashSet<Sym>>,
    /// Weakly-connected-component representative per class: the hierarchy
    /// each class belongs to. The oid universe is partitioned by hierarchy.
    hierarchy: FxHashMap<Sym, Sym>,
    /// Effective (inheritance-expanded) tuple type per class.
    effective: FxHashMap<Sym, TypeDesc>,
    validated: bool,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    // ----- construction ---------------------------------------------------

    fn check_fresh(&self, name: Sym) -> Result<(), ModelError> {
        if self.domains.contains_key(&name)
            || self.classes.contains_key(&name)
            || self.assocs.contains_key(&name)
            || self.functions.contains_key(&name)
        {
            Err(ModelError::DuplicateName(name))
        } else {
            Ok(())
        }
    }

    /// Add a domain equation `name = ty`.
    pub fn add_domain(&mut self, name: impl Into<Sym>, ty: TypeDesc) -> Result<(), ModelError> {
        let name = name.into();
        self.check_fresh(name)?;
        self.domains.insert(name, ty);
        self.validated = false;
        Ok(())
    }

    /// Add a class equation `name = ty` (top level must be a tuple).
    pub fn add_class(&mut self, name: impl Into<Sym>, ty: TypeDesc) -> Result<(), ModelError> {
        let name = name.into();
        self.check_fresh(name)?;
        if !matches!(ty, TypeDesc::Tuple(_) | TypeDesc::Class(_)) {
            return Err(ModelError::NonTupleTop(name));
        }
        self.classes.insert(name, ty);
        self.validated = false;
        Ok(())
    }

    /// Add an association equation (top level must be a tuple).
    pub fn add_assoc(&mut self, name: impl Into<Sym>, ty: TypeDesc) -> Result<(), ModelError> {
        let name = name.into();
        self.check_fresh(name)?;
        if !matches!(ty, TypeDesc::Tuple(_)) {
            return Err(ModelError::NonTupleTop(name));
        }
        self.assocs.insert(name, ty);
        self.validated = false;
        Ok(())
    }

    /// Declare a data function.
    pub fn add_function(
        &mut self,
        name: impl Into<Sym>,
        sig: FunctionSig,
    ) -> Result<(), ModelError> {
        let name = name.into();
        self.check_fresh(name)?;
        self.functions.insert(name, sig);
        self.validated = false;
        Ok(())
    }

    /// Declare `sub isa sup`, optionally through an embedded component label.
    pub fn add_isa(&mut self, sub: impl Into<Sym>, sup: impl Into<Sym>, via: Option<Sym>) {
        self.isa_edges.push(IsaEdge {
            sub: sub.into(),
            sup: sup.into(),
            via,
        });
        self.validated = false;
    }

    /// Declare a renaming for an inherited attribute of `class`.
    pub fn add_rename(&mut self, class: impl Into<Sym>, old: impl Into<Sym>, new: impl Into<Sym>) {
        self.renames.push(Rename {
            class: class.into(),
            old: old.into(),
            new: new.into(),
        });
        self.validated = false;
    }

    // ----- lookups ---------------------------------------------------------

    /// Namespace of a name, if any.
    pub fn kind(&self, name: Sym) -> Option<PredKind> {
        if self.classes.contains_key(&name) {
            Some(PredKind::Class)
        } else if self.assocs.contains_key(&name) {
            Some(PredKind::Assoc)
        } else if self.domains.contains_key(&name) {
            Some(PredKind::Domain)
        } else if self.functions.contains_key(&name) {
            Some(PredKind::Function)
        } else {
            None
        }
    }

    /// Raw `Σ(name)` for any of the three type namespaces.
    pub fn sigma(&self, name: Sym) -> Option<&TypeDesc> {
        self.domains
            .get(&name)
            .or_else(|| self.classes.get(&name))
            .or_else(|| self.assocs.get(&name))
    }

    /// Raw class equation.
    pub fn class_type(&self, c: Sym) -> Option<&TypeDesc> {
        self.classes.get(&c)
    }

    /// Raw association equation.
    pub fn assoc_type(&self, a: Sym) -> Option<&TypeDesc> {
        self.assocs.get(&a)
    }

    /// Raw domain equation.
    pub fn domain_type(&self, d: Sym) -> Option<&TypeDesc> {
        self.domains.get(&d)
    }

    /// Data function signature.
    pub fn function(&self, f: Sym) -> Option<&FunctionSig> {
        self.functions.get(&f)
    }

    /// Iterate class names (unordered).
    pub fn classes(&self) -> impl Iterator<Item = Sym> + '_ {
        self.classes.keys().copied()
    }

    /// Iterate association names (unordered).
    pub fn assocs(&self) -> impl Iterator<Item = Sym> + '_ {
        self.assocs.keys().copied()
    }

    /// Iterate domain names (unordered).
    pub fn domains(&self) -> impl Iterator<Item = Sym> + '_ {
        self.domains.keys().copied()
    }

    /// Iterate function names (unordered).
    pub fn functions_iter(&self) -> impl Iterator<Item = (Sym, &FunctionSig)> + '_ {
        self.functions.iter().map(|(k, v)| (*k, v))
    }

    /// Direct isa edges as declared.
    pub fn isa_edges(&self) -> &[IsaEdge] {
        &self.isa_edges
    }

    /// Renamings as declared.
    pub fn renames(&self) -> &[Rename] {
        &self.renames
    }

    // ----- derived queries (require a successful `validate`) --------------

    /// Has `validate` succeeded since the last mutation?
    pub fn is_validated(&self) -> bool {
        self.validated
    }

    /// Strict isa ancestors of `c` (transitive, not reflexive).
    pub fn ancestors(&self, c: Sym) -> impl Iterator<Item = Sym> + '_ {
        self.ancestors
            .get(&c)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Reflexive-transitive `sub isa sup`.
    pub fn isa_holds(&self, sub: Sym, sup: Sym) -> bool {
        sub == sup || self.ancestors.get(&sub).is_some_and(|a| a.contains(&sup))
    }

    /// Are two classes in the same generalization hierarchy? (The oid
    /// universe is partitioned by hierarchy — Section 2.1.)
    pub fn same_hierarchy(&self, c1: Sym, c2: Sym) -> bool {
        match (self.hierarchy.get(&c1), self.hierarchy.get(&c2)) {
            (Some(r1), Some(r2)) => r1 == r2,
            _ => false,
        }
    }

    /// The hierarchy representative of a class.
    pub fn hierarchy_of(&self, c: Sym) -> Option<Sym> {
        self.hierarchy.get(&c).copied()
    }

    /// Direct subclasses of `c`.
    pub fn direct_subclasses(&self, c: Sym) -> Vec<Sym> {
        self.isa_edges
            .iter()
            .filter(|e| e.sup == c)
            .map(|e| e.sub)
            .collect()
    }

    /// The effective (inheritance-expanded) tuple type of a class: all
    /// inherited attributes spliced in, renamings applied. This is the type
    /// rule literals are checked against.
    pub fn effective(&self, c: Sym) -> Option<&TypeDesc> {
        self.effective.get(&c)
    }

    /// The effective attribute list of a class or association predicate:
    /// what a rule literal over this predicate may mention.
    pub fn attributes(&self, pred: Sym) -> Option<&[Field]> {
        if let Some(t) = self.effective.get(&pred) {
            return t.as_tuple();
        }
        self.assocs.get(&pred).and_then(|t| t.as_tuple())
    }

    /// Fully expand domain references inside `ty` (classes stay symbolic:
    /// they are oid slots at the instance level).
    pub fn expand(&self, ty: &TypeDesc) -> TypeDesc {
        match ty {
            TypeDesc::Int | TypeDesc::Str | TypeDesc::Class(_) => ty.clone(),
            TypeDesc::Domain(d) => match self.domains.get(d) {
                Some(inner) => self.expand(inner),
                None => ty.clone(),
            },
            TypeDesc::Tuple(fs) => TypeDesc::Tuple(
                fs.iter()
                    .map(|f| Field::new(f.label, self.expand(&f.ty)))
                    .collect(),
            ),
            TypeDesc::Set(t) => TypeDesc::set(self.expand(t)),
            TypeDesc::Multiset(t) => TypeDesc::multiset(self.expand(t)),
            TypeDesc::Seq(t) => TypeDesc::seq(self.expand(t)),
        }
    }

    /// The refinement relation `τ1 ≤ τ2` of Appendix A.
    pub fn refines(&self, t1: &TypeDesc, t2: &TypeDesc) -> bool {
        Refiner::new(self).refines(t1, t2)
    }

    /// Typed-unification compatibility (Section 3.1): two types are
    /// compatible iff one is a refinement of the other.
    pub fn compatible(&self, t1: &TypeDesc, t2: &TypeDesc) -> bool {
        self.refines(t1, t2) || self.refines(t2, t1)
    }

    // ----- module-application support (Section 4.1) ------------------------

    /// `S ∪ S_M`: the schema extended with another schema's equations.
    /// Identical redefinitions are tolerated; conflicting ones error.
    pub fn union(&self, other: &Schema) -> Result<Schema, ModelError> {
        let mut out = self.clone();
        for (name, ty) in &other.domains {
            match out.domains.get(name) {
                Some(t) if t == ty => {}
                Some(_) => return Err(ModelError::DuplicateName(*name)),
                None => {
                    out.check_fresh(*name)?;
                    out.domains.insert(*name, ty.clone());
                }
            }
        }
        for (name, ty) in &other.classes {
            match out.classes.get(name) {
                Some(t) if t == ty => {}
                Some(_) => return Err(ModelError::DuplicateName(*name)),
                None => {
                    out.check_fresh(*name)?;
                    out.classes.insert(*name, ty.clone());
                }
            }
        }
        for (name, ty) in &other.assocs {
            match out.assocs.get(name) {
                Some(t) if t == ty => {}
                Some(_) => return Err(ModelError::DuplicateName(*name)),
                None => {
                    out.check_fresh(*name)?;
                    out.assocs.insert(*name, ty.clone());
                }
            }
        }
        for (name, sig) in &other.functions {
            match out.functions.get(name) {
                Some(s) if s == sig => {}
                Some(_) => return Err(ModelError::DuplicateName(*name)),
                None => {
                    out.check_fresh(*name)?;
                    out.functions.insert(*name, sig.clone());
                }
            }
        }
        for e in &other.isa_edges {
            if !out.isa_edges.contains(e) {
                out.isa_edges.push(e.clone());
            }
        }
        for r in &other.renames {
            if !out.renames.contains(r) {
                out.renames.push(*r);
            }
        }
        out.validated = false;
        Ok(out)
    }

    /// `S − S_M`: remove every equation defined by `other` (used by the RDDI
    /// and RDDV module application modes).
    pub fn difference(&self, other: &Schema) -> Schema {
        let mut out = self.clone();
        for name in other.domains.keys() {
            out.domains.remove(name);
        }
        for name in other.classes.keys() {
            out.classes.remove(name);
        }
        for name in other.assocs.keys() {
            out.assocs.remove(name);
        }
        for name in other.functions.keys() {
            out.functions.remove(name);
        }
        out.isa_edges
            .retain(|e| !other.isa_edges.contains(e) && !other.classes.contains_key(&e.sub));
        out.validated = false;
        out
    }

    // ----- validation -------------------------------------------------------

    /// Validate every structural property of Definition 2 / Section 2.1 and
    /// compute the derived tables (ancestors, hierarchies, effective types).
    pub fn validate(&mut self) -> Result<(), Vec<ModelError>> {
        let mut errs = Vec::new();

        self.check_references(&mut errs);
        self.check_domains(&mut errs);
        self.check_labels(&mut errs);
        if errs.is_empty() {
            self.compute_isa(&mut errs);
        }
        if errs.is_empty() {
            self.compute_effective(&mut errs);
        }
        if errs.is_empty() {
            self.check_isa_refinement(&mut errs);
        }

        if errs.is_empty() {
            self.validated = true;
            Ok(())
        } else {
            self.validated = false;
            Err(errs)
        }
    }

    fn check_references(&self, errs: &mut Vec<ModelError>) {
        let all_types = |name: Sym| {
            self.domains.contains_key(&name)
                || self.classes.contains_key(&name)
                || self.assocs.contains_key(&name)
        };
        let check_ty = |owner: Sym, ty: &TypeDesc, errs: &mut Vec<ModelError>| {
            for (name, is_class_ref) in ty.referenced_names() {
                if !all_types(name) {
                    errs.push(ModelError::UnknownType(name));
                    continue;
                }
                if self.assocs.contains_key(&name) {
                    errs.push(ModelError::AssocInType { owner, assoc: name });
                }
                // A `Class(name)` node must actually reference a class; the
                // parser resolves this, but programmatic construction may not.
                if is_class_ref && !self.classes.contains_key(&name) {
                    errs.push(ModelError::UnknownType(name));
                }
            }
        };
        for (owner, ty) in self
            .domains
            .iter()
            .chain(self.classes.iter())
            .chain(self.assocs.iter())
        {
            check_ty(*owner, ty, errs);
        }
        for (fname, sig) in &self.functions {
            for ty in sig.params.iter().chain(std::iter::once(&sig.result_elem)) {
                check_ty(*fname, ty, errs);
            }
        }
        for e in &self.isa_edges {
            for c in [e.sub, e.sup] {
                if !self.classes.contains_key(&c) {
                    errs.push(ModelError::UnknownType(c));
                }
            }
        }
    }

    fn check_domains(&self, errs: &mut Vec<ModelError>) {
        // No class names inside domains (Definition 2) and no recursion.
        for (d, ty) in &self.domains {
            let mut stack = vec![*d];
            let mut visiting = FxHashSet::default();
            visiting.insert(*d);
            let mut todo = vec![ty.clone()];
            let mut recursive = false;
            while let Some(t) = todo.pop() {
                for (name, is_class) in t.referenced_names() {
                    if is_class || self.classes.contains_key(&name) {
                        errs.push(ModelError::ClassInDomain {
                            domain: *d,
                            class: name,
                        });
                    } else if let Some(inner) = self.domains.get(&name) {
                        if visiting.contains(&name) {
                            recursive = true;
                        } else {
                            visiting.insert(name);
                            stack.push(name);
                            todo.push(inner.clone());
                        }
                    }
                }
            }
            if recursive {
                errs.push(ModelError::RecursiveDomain(*d));
            }
        }
    }

    fn check_labels(&self, errs: &mut Vec<ModelError>) {
        fn walk(owner: Sym, ty: &TypeDesc, errs: &mut Vec<ModelError>) {
            match ty {
                TypeDesc::Tuple(fs) => {
                    let mut seen = FxHashSet::default();
                    for f in fs {
                        if !seen.insert(f.label) {
                            errs.push(ModelError::DuplicateLabel {
                                owner,
                                label: f.label,
                            });
                        }
                        walk(owner, &f.ty, errs);
                    }
                }
                TypeDesc::Set(t) | TypeDesc::Multiset(t) | TypeDesc::Seq(t) => walk(owner, t, errs),
                _ => {}
            }
        }
        for (owner, ty) in self
            .domains
            .iter()
            .chain(self.classes.iter())
            .chain(self.assocs.iter())
        {
            walk(*owner, ty, errs);
        }
    }

    fn compute_isa(&mut self, errs: &mut Vec<ModelError>) {
        // Strict transitive ancestors, with cycle detection (isa must be a
        // partial order).
        let mut direct: FxHashMap<Sym, Vec<Sym>> = FxHashMap::default();
        for e in &self.isa_edges {
            direct.entry(e.sub).or_default().push(e.sup);
        }
        let mut ancestors: FxHashMap<Sym, FxHashSet<Sym>> = FxHashMap::default();
        for &c in self.classes.keys() {
            let mut acc = FxHashSet::default();
            let mut stack: Vec<Sym> = direct.get(&c).cloned().unwrap_or_default();
            while let Some(p) = stack.pop() {
                if p == c {
                    errs.push(ModelError::IsaCycle(c));
                    break;
                }
                if acc.insert(p) {
                    if let Some(ps) = direct.get(&p) {
                        stack.extend(ps.iter().copied());
                    }
                }
            }
            ancestors.insert(c, acc);
        }

        // Multiple inheritance: every pair of direct parents must share a
        // common ancestor (reflexively).
        for (c, parents) in &direct {
            for i in 0..parents.len() {
                for j in i + 1..parents.len() {
                    let (a, b) = (parents[i], parents[j]);
                    let ra: FxHashSet<Sym> = ancestors
                        .get(&a)
                        .map(|s| {
                            let mut s = s.clone();
                            s.insert(a);
                            s
                        })
                        .unwrap_or_default();
                    let rb_has_common = {
                        let mut found = ra.contains(&b);
                        if let Some(bb) = ancestors.get(&b) {
                            found = found || bb.iter().any(|x| ra.contains(x));
                        }
                        found
                    };
                    if !rb_has_common {
                        errs.push(ModelError::NoCommonAncestor {
                            class: *c,
                            parents: (a, b),
                        });
                    }
                }
            }
        }

        // Hierarchy partition: weakly connected components of the isa graph.
        let mut rep: FxHashMap<Sym, Sym> = FxHashMap::default();
        fn find(rep: &mut FxHashMap<Sym, Sym>, mut x: Sym) -> Sym {
            loop {
                let p = *rep.get(&x).unwrap_or(&x);
                if p == x {
                    return x;
                }
                let gp = *rep.get(&p).unwrap_or(&p);
                rep.insert(x, gp);
                x = p;
            }
        }
        for &c in self.classes.keys() {
            rep.entry(c).or_insert(c);
        }
        for e in &self.isa_edges {
            let (a, b) = (find(&mut rep, e.sub), find(&mut rep, e.sup));
            if a != b {
                // Deterministic representative: smaller symbol wins.
                if a < b {
                    rep.insert(b, a);
                } else {
                    rep.insert(a, b);
                }
            }
        }
        let mut hierarchy = FxHashMap::default();
        let keys: Vec<Sym> = self.classes.keys().copied().collect();
        for c in keys {
            let r = find(&mut rep, c);
            hierarchy.insert(c, r);
        }

        self.ancestors = ancestors;
        self.hierarchy = hierarchy;
    }

    /// Compute effective (inheritance-expanded) types for all classes.
    fn compute_effective(&mut self, errs: &mut Vec<ModelError>) {
        let mut memo: FxHashMap<Sym, TypeDesc> = FxHashMap::default();
        let classes: Vec<Sym> = self.classes.keys().copied().collect();
        for c in classes {
            if let Err(e) = self.effective_of(c, &mut memo) {
                errs.push(e);
            }
        }
        self.effective = memo;
    }

    fn effective_of(
        &self,
        c: Sym,
        memo: &mut FxHashMap<Sym, TypeDesc>,
    ) -> Result<TypeDesc, ModelError> {
        if let Some(t) = memo.get(&c) {
            return Ok(t.clone());
        }
        let raw = self
            .classes
            .get(&c)
            .ok_or(ModelError::UnknownType(c))?
            .clone();
        // Which components of Σ(c) are embeddings of superclasses?
        let mut embed_labels: FxHashMap<Sym, Sym> = FxHashMap::default(); // label -> parent
        for e in self.isa_edges.iter().filter(|e| e.sub == c) {
            let fields = raw.as_tuple().unwrap_or(&[]);
            let label = match e.via {
                Some(l) => {
                    // Must exist and have the parent's type.
                    if fields
                        .iter()
                        .any(|f| f.label == l && f.ty == TypeDesc::Class(e.sup))
                    {
                        Some(l)
                    } else {
                        return Err(ModelError::Invalid(format!(
                            "isa declaration `{c} {l} isa {}` names no component of that type",
                            e.sup
                        )));
                    }
                }
                None => {
                    let candidates: Vec<Sym> = fields
                        .iter()
                        .filter(|f| f.ty == TypeDesc::Class(e.sup))
                        .map(|f| f.label)
                        .collect();
                    match candidates.len() {
                        0 => None, // flat isa: attributes are redeclared
                        1 => Some(candidates[0]),
                        _ => {
                            return Err(ModelError::Invalid(format!(
                                "isa `{c} isa {}` is ambiguous: label the embedded component",
                                e.sup
                            )))
                        }
                    }
                }
            };
            if let Some(l) = label {
                embed_labels.insert(l, e.sup);
            }
        }

        let mut out: Vec<Field> = Vec::new();
        let fields = raw.as_tuple().unwrap_or(&[]).to_vec();
        for f in fields {
            if let Some(parent) = embed_labels.get(&f.label) {
                let ptype = self.effective_of(*parent, memo)?;
                for pf in ptype.as_tuple().unwrap_or(&[]) {
                    let exposed = self
                        .renames
                        .iter()
                        .find(|r| r.class == c && r.old == pf.label)
                        .map(|r| r.new)
                        .unwrap_or(pf.label);
                    out.push(Field::new(exposed, pf.ty.clone()));
                }
            } else {
                out.push(f);
            }
        }

        // Conflict detection: duplicate labels with identical types merge
        // (diamond through a common ancestor); different types are an error
        // unless renamed away.
        let mut dedup: Vec<Field> = Vec::new();
        for f in out {
            if let Some(prev) = dedup.iter().find(|p| p.label == f.label) {
                if prev.ty == f.ty {
                    continue;
                }
                return Err(ModelError::InheritanceConflict {
                    class: c,
                    label: f.label,
                });
            }
            dedup.push(f);
        }

        let t = TypeDesc::Tuple(dedup);
        memo.insert(c, t.clone());
        Ok(t)
    }

    fn check_isa_refinement(&self, errs: &mut Vec<ModelError>) {
        for e in &self.isa_edges {
            let (Some(sub_t), Some(sup_t)) =
                (self.effective.get(&e.sub), self.effective.get(&e.sup))
            else {
                continue;
            };
            if !self.refines(sub_t, sup_t) {
                errs.push(ModelError::IsaWithoutRefinement {
                    sub: e.sub,
                    sup: e.sup,
                });
            }
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut doms: Vec<_> = self.domains.iter().collect();
        doms.sort_by_key(|(n, _)| **n);
        if !doms.is_empty() {
            writeln!(f, "domains")?;
            for (n, t) in doms {
                writeln!(f, "  {n} = {t};")?;
            }
        }
        let mut cls: Vec<_> = self.classes.iter().collect();
        cls.sort_by_key(|(n, _)| **n);
        if !cls.is_empty() {
            writeln!(f, "classes")?;
            for (n, t) in cls {
                writeln!(f, "  {n} = {t};")?;
            }
            for e in &self.isa_edges {
                match e.via {
                    Some(l) => writeln!(f, "  {} via {l} isa {};", e.sub, e.sup)?,
                    None => writeln!(f, "  {} isa {};", e.sub, e.sup)?,
                }
            }
            for r in &self.renames {
                writeln!(f, "  rename {} {} as {};", r.class, r.old, r.new)?;
            }
        }
        let mut asc: Vec<_> = self.assocs.iter().collect();
        asc.sort_by_key(|(n, _)| **n);
        if !asc.is_empty() {
            writeln!(f, "associations")?;
            for (n, t) in asc {
                writeln!(f, "  {n} = {t};")?;
            }
        }
        let mut funs: Vec<_> = self.functions.iter().collect();
        funs.sort_by_key(|(n, _)| **n);
        if !funs.is_empty() {
            writeln!(f, "functions")?;
            for (n, sig) in funs {
                write!(f, "  {n}: ")?;
                for (i, p) in sig.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{p}")?;
                }
                writeln!(f, " -> {{{}}};", sig.result_elem)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person_student() -> Schema {
        let mut s = Schema::new();
        s.add_domain("name_d", TypeDesc::Str).unwrap();
        s.add_class(
            "person",
            TypeDesc::tuple([
                ("name", TypeDesc::domain("name_d")),
                ("bdate", TypeDesc::Str),
                ("address", TypeDesc::Str),
            ]),
        )
        .unwrap();
        s.add_class(
            "student",
            TypeDesc::tuple([
                ("person", TypeDesc::class("person")),
                ("school", TypeDesc::Str),
            ]),
        )
        .unwrap();
        s.add_isa("student", "person", None);
        s
    }

    #[test]
    fn embedding_isa_splices_inherited_attributes() {
        let mut s = person_student();
        s.validate().expect("valid schema");
        let eff = s.effective(Sym::new("student")).unwrap();
        let labels: Vec<&str> = eff
            .as_tuple()
            .unwrap()
            .iter()
            .map(|f| f.label.as_str())
            .collect();
        assert_eq!(labels, vec!["name", "bdate", "address", "school"]);
        assert!(s.isa_holds(Sym::new("student"), Sym::new("person")));
        assert!(!s.isa_holds(Sym::new("person"), Sym::new("student")));
    }

    #[test]
    fn flat_isa_is_accepted_when_attributes_are_redeclared() {
        let mut s = Schema::new();
        s.add_class("person", TypeDesc::tuple([("name", TypeDesc::Str)]))
            .unwrap();
        s.add_class(
            "student",
            TypeDesc::tuple([("name", TypeDesc::Str), ("school", TypeDesc::Str)]),
        )
        .unwrap();
        s.add_isa("student", "person", None);
        s.validate().expect("flat isa valid");
    }

    #[test]
    fn isa_without_refinement_is_rejected() {
        let mut s = Schema::new();
        s.add_class("person", TypeDesc::tuple([("name", TypeDesc::Str)]))
            .unwrap();
        s.add_class("thing", TypeDesc::tuple([("weight", TypeDesc::Int)]))
            .unwrap();
        s.add_isa("thing", "person", None);
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ModelError::IsaWithoutRefinement { .. })));
    }

    #[test]
    fn isa_cycles_are_rejected() {
        let mut s = Schema::new();
        s.add_class("a", TypeDesc::tuple([("x", TypeDesc::Int)]))
            .unwrap();
        s.add_class("b", TypeDesc::tuple([("x", TypeDesc::Int)]))
            .unwrap();
        s.add_isa("a", "b", None);
        s.add_isa("b", "a", None);
        let errs = s.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, ModelError::IsaCycle(_))));
    }

    #[test]
    fn domains_may_not_reference_classes() {
        let mut s = Schema::new();
        s.add_class("person", TypeDesc::tuple([("name", TypeDesc::Str)]))
            .unwrap();
        s.add_domain("bad", TypeDesc::set(TypeDesc::class("person")))
            .unwrap();
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ModelError::ClassInDomain { .. })));
    }

    #[test]
    fn recursive_domains_are_rejected() {
        let mut s = Schema::new();
        s.add_domain(
            "list",
            TypeDesc::tuple([("tail", TypeDesc::domain("list"))]),
        )
        .unwrap();
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ModelError::RecursiveDomain(_))));
    }

    #[test]
    fn associations_cannot_nest_associations() {
        let mut s = Schema::new();
        s.add_assoc("game", TypeDesc::tuple([("n", TypeDesc::Int)]))
            .unwrap();
        s.add_assoc(
            "season",
            TypeDesc::tuple([("games", TypeDesc::set(TypeDesc::domain("game")))]),
        )
        .unwrap();
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ModelError::AssocInType { .. })));
    }

    #[test]
    fn multiple_inheritance_needs_common_ancestor() {
        let mut s = Schema::new();
        for (name, fields) in [
            ("person", vec![("name", TypeDesc::Str)]),
            ("robot", vec![("serial", TypeDesc::Int)]),
        ] {
            s.add_class(name, TypeDesc::tuple(fields)).unwrap();
        }
        s.add_class(
            "cyborg",
            TypeDesc::tuple([("name", TypeDesc::Str), ("serial", TypeDesc::Int)]),
        )
        .unwrap();
        s.add_isa("cyborg", "person", None);
        s.add_isa("cyborg", "robot", None);
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ModelError::NoCommonAncestor { .. })));
    }

    #[test]
    fn diamond_inheritance_with_common_ancestor_is_legal() {
        let mut s = Schema::new();
        s.add_class("being", TypeDesc::tuple([("name", TypeDesc::Str)]))
            .unwrap();
        s.add_class(
            "person",
            TypeDesc::tuple([("being", TypeDesc::class("being"))]),
        )
        .unwrap();
        s.add_class(
            "robot",
            TypeDesc::tuple([("being", TypeDesc::class("being"))]),
        )
        .unwrap();
        s.add_class("cyborg", TypeDesc::tuple([("name", TypeDesc::Str)]))
            .unwrap();
        s.add_isa("person", "being", None);
        s.add_isa("robot", "being", None);
        s.add_isa("cyborg", "person", None);
        s.add_isa("cyborg", "robot", None);
        s.validate().expect("diamond with common ancestor is legal");
        // All four classes form one hierarchy.
        assert!(s.same_hierarchy(Sym::new("cyborg"), Sym::new("being")));
    }

    #[test]
    fn hierarchy_partition_separates_unrelated_classes() {
        let mut s = person_student();
        s.add_class("team", TypeDesc::tuple([("n", TypeDesc::Str)]))
            .unwrap();
        s.validate().unwrap();
        assert!(s.same_hierarchy(Sym::new("student"), Sym::new("person")));
        assert!(!s.same_hierarchy(Sym::new("team"), Sym::new("person")));
    }

    #[test]
    fn renaming_resolves_inherited_conflicts() {
        let mut s = Schema::new();
        s.add_class("a", TypeDesc::tuple([("id", TypeDesc::Int)]))
            .unwrap();
        s.add_class("b", TypeDesc::tuple([("id", TypeDesc::Str)]))
            .unwrap();
        // c embeds both a and b; their `id` attributes clash by type.
        s.add_class(
            "c",
            TypeDesc::tuple([("a", TypeDesc::class("a")), ("b", TypeDesc::class("b"))]),
        )
        .unwrap();
        // Give a and b a common ancestor so multiple inheritance is legal.
        s.add_class("root", TypeDesc::Tuple(vec![])).unwrap();
        s.add_isa("a", "root", None);
        s.add_isa("b", "root", None);
        s.add_isa("c", "a", None);
        s.add_isa("c", "b", None);
        let errs = s.clone().validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ModelError::InheritanceConflict { .. })));

        s.add_rename("c", "id", "b_id");
        // The rename applies to whichever parent is spliced second; to be
        // deterministic we rename the string-typed one by renaming on `c`.
        // After renaming, validation should succeed.
        match s.validate() {
            Ok(()) => {}
            Err(errs) => {
                // Renames apply per-label; if both parents' `id` hit the same
                // rename we still conflict. Accept either outcome but ensure
                // the error is the conflict, nothing else.
                assert!(errs
                    .iter()
                    .all(|e| matches!(e, ModelError::InheritanceConflict { .. })));
            }
        }
    }

    #[test]
    fn union_and_difference_support_module_modes() {
        let base = {
            let mut s = Schema::new();
            s.add_assoc("p", TypeDesc::tuple([("d1", TypeDesc::Int)]))
                .unwrap();
            s
        };
        let add = {
            let mut s = Schema::new();
            s.add_assoc("mod_t", TypeDesc::tuple([("d1", TypeDesc::Int)]))
                .unwrap();
            s
        };
        let mut u = base.union(&add).unwrap();
        u.validate().unwrap();
        assert!(u.assoc_type(Sym::new("mod_t")).is_some());
        let d = u.difference(&add);
        assert!(d.assoc_type(Sym::new("mod_t")).is_none());
        assert!(d.assoc_type(Sym::new("p")).is_some());
        // Identical redefinition tolerated.
        let again = u.union(&add).unwrap();
        assert!(again.assoc_type(Sym::new("mod_t")).is_some());
        // Conflicting redefinition rejected.
        let mut conflict = Schema::new();
        conflict
            .add_assoc("p", TypeDesc::tuple([("other", TypeDesc::Str)]))
            .unwrap();
        assert!(base.union(&conflict).is_err());
    }

    #[test]
    fn expand_resolves_domains_only() {
        let mut s = person_student();
        s.validate().unwrap();
        let t = s.expand(&TypeDesc::tuple([
            ("n", TypeDesc::domain("name_d")),
            ("p", TypeDesc::class("person")),
        ]));
        assert_eq!(
            t,
            TypeDesc::tuple([("n", TypeDesc::Str), ("p", TypeDesc::class("person"))])
        );
    }

    #[test]
    fn duplicate_names_across_namespaces_rejected() {
        let mut s = Schema::new();
        s.add_domain("x", TypeDesc::Int).unwrap();
        assert!(matches!(
            s.add_class("x", TypeDesc::tuple([("a", TypeDesc::Int)])),
            Err(ModelError::DuplicateName(_))
        ));
    }

    #[test]
    fn display_lists_sections_in_order() {
        let mut s = person_student();
        s.add_assoc(
            "advises",
            TypeDesc::tuple([("who", TypeDesc::class("person"))]),
        )
        .unwrap();
        s.validate().unwrap();
        let text = s.to_string();
        let di = text.find("domains").unwrap();
        let ci = text.find("classes").unwrap();
        let ai = text.find("associations").unwrap();
        assert!(di < ci && ci < ai);
        assert!(text.contains("student isa person;"));
    }
}
