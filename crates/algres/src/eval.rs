//! Evaluator for the extended relational algebra.

use rustc_hash::FxHashMap;

use logres_model::{Sym, Value};

use crate::error::AlgError;
use crate::expr::{AggFun, AlgExpr, CmpOp, FixpointMode, Pred, Scalar};
use crate::relation::Relation;

/// Upper bound on fixpoint rounds; exceeded means divergence is reported
/// rather than looping forever (the underlying language cannot guarantee
/// termination — Appendix B).
pub const MAX_FIXPOINT_STEPS: usize = 1_000_000;

/// Named relations visible to an expression.
#[derive(Debug, Clone, Default)]
pub struct Env {
    rels: FxHashMap<Sym, Relation>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Bind (or rebind) a relation.
    pub fn bind(&mut self, name: impl Into<Sym>, rel: Relation) {
        self.rels.insert(name.into(), rel);
    }

    /// Look up a relation.
    pub fn get(&self, name: Sym) -> Option<&Relation> {
        self.rels.get(&name)
    }
}

/// Evaluate an expression.
pub fn eval(expr: &AlgExpr, env: &Env) -> Result<Relation, AlgError> {
    match expr {
        AlgExpr::Rel(name) => env
            .get(*name)
            .cloned()
            .ok_or(AlgError::UnknownRelation(*name)),
        AlgExpr::Const(rel) => Ok(rel.clone()),
        AlgExpr::Select { input, pred } => {
            let rel = eval(input, env)?;
            let mut out = Relation::new(rel.cols().to_vec());
            for t in rel.iter() {
                if eval_pred(pred, t)? {
                    out.insert(t.clone());
                }
            }
            Ok(out)
        }
        AlgExpr::Project { input, cols } => {
            let rel = eval(input, env)?;
            for c in cols {
                if !rel.has_col(*c) {
                    return Err(AlgError::UnknownColumn {
                        rel: format!("{:?}", rel.cols()),
                        col: *c,
                    });
                }
            }
            let mut out = Relation::new(cols.clone());
            for t in rel.iter() {
                let fields: Vec<(Sym, Value)> = cols
                    .iter()
                    .map(|c| (*c, t.field(*c).expect("checked column").clone()))
                    .collect();
                out.insert(Value::tuple(fields));
            }
            Ok(out)
        }
        AlgExpr::Rename { input, from, to } => {
            let rel = eval(input, env)?;
            if !rel.has_col(*from) {
                return Err(AlgError::UnknownColumn {
                    rel: format!("{:?}", rel.cols()),
                    col: *from,
                });
            }
            let cols: Vec<Sym> = rel
                .cols()
                .iter()
                .map(|c| if c == from { *to } else { *c })
                .collect();
            let mut out = Relation::new(cols);
            for t in rel.iter() {
                let fields: Vec<(Sym, Value)> = t
                    .as_tuple()
                    .expect("relation rows are tuples")
                    .iter()
                    .map(|(l, v)| (if l == from { *to } else { *l }, v.clone()))
                    .collect();
                out.insert(Value::tuple(fields));
            }
            Ok(out)
        }
        AlgExpr::Product { left, right } => {
            let (l, r) = (eval(left, env)?, eval(right, env)?);
            let overlap: Vec<Sym> = l
                .cols()
                .iter()
                .filter(|c| r.has_col(**c))
                .copied()
                .collect();
            if !overlap.is_empty() {
                return Err(AlgError::OverlappingColumns(overlap));
            }
            let mut cols = l.cols().to_vec();
            cols.extend_from_slice(r.cols());
            let mut out = Relation::new(cols);
            for lt in l.iter() {
                for rt in r.iter() {
                    let mut fields = lt.as_tuple().expect("tuple").to_vec();
                    fields.extend(rt.as_tuple().expect("tuple").iter().cloned());
                    out.insert(Value::tuple(fields));
                }
            }
            Ok(out)
        }
        AlgExpr::Join { left, right } => {
            let (l, r) = (eval(left, env)?, eval(right, env)?);
            let shared: Vec<Sym> = l
                .cols()
                .iter()
                .filter(|c| r.has_col(**c))
                .copied()
                .collect();
            let right_only: Vec<Sym> = r
                .cols()
                .iter()
                .filter(|c| !l.has_col(**c))
                .copied()
                .collect();
            let mut cols = l.cols().to_vec();
            cols.extend(right_only.iter().copied());
            let mut out = Relation::new(cols);
            // Hash join on the shared columns.
            let key = |t: &Value, cols: &[Sym]| -> Vec<Value> {
                cols.iter()
                    .map(|c| t.field(*c).expect("shared column").clone())
                    .collect()
            };
            let mut table: FxHashMap<Vec<Value>, Vec<&Value>> = FxHashMap::default();
            for rt in r.iter() {
                table.entry(key(rt, &shared)).or_default().push(rt);
            }
            for lt in l.iter() {
                if let Some(matches) = table.get(&key(lt, &shared)) {
                    for rt in matches {
                        let mut fields = lt.as_tuple().expect("tuple").to_vec();
                        for c in &right_only {
                            fields.push((*c, rt.field(*c).expect("column").clone()));
                        }
                        out.insert(Value::tuple(fields));
                    }
                }
            }
            Ok(out)
        }
        AlgExpr::Union { left, right } => {
            let (l, r) = (eval(left, env)?, eval(right, env)?);
            check_same_cols(&l, &r)?;
            let mut out = l;
            // Align field order by reconstructing through labels.
            for t in r.iter() {
                out.insert(t.clone());
            }
            Ok(out)
        }
        AlgExpr::Diff { left, right } => {
            let (l, r) = (eval(left, env)?, eval(right, env)?);
            check_same_cols(&l, &r)?;
            let mut out = Relation::new(l.cols().to_vec());
            for t in l.iter() {
                if !r.contains(t) {
                    out.insert(t.clone());
                }
            }
            Ok(out)
        }
        AlgExpr::Intersect { left, right } => {
            let (l, r) = (eval(left, env)?, eval(right, env)?);
            check_same_cols(&l, &r)?;
            let mut out = Relation::new(l.cols().to_vec());
            for t in l.iter() {
                if r.contains(t) {
                    out.insert(t.clone());
                }
            }
            Ok(out)
        }
        AlgExpr::SemiJoin { left, right } | AlgExpr::AntiJoin { left, right } => {
            let keep_matches = matches!(expr, AlgExpr::SemiJoin { .. });
            let (l, r) = (eval(left, env)?, eval(right, env)?);
            let shared: Vec<Sym> = l
                .cols()
                .iter()
                .filter(|c| r.has_col(**c))
                .copied()
                .collect();
            let key = |t: &Value| -> Vec<Value> {
                shared
                    .iter()
                    .map(|c| t.field(*c).expect("shared column").clone())
                    .collect()
            };
            let right_keys: rustc_hash::FxHashSet<Vec<Value>> = r.iter().map(key).collect();
            let mut out = Relation::new(l.cols().to_vec());
            for t in l.iter() {
                // With no shared columns the right side acts as an
                // existence test on its emptiness.
                let matched = if shared.is_empty() {
                    !r.is_empty()
                } else {
                    right_keys.contains(&key(t))
                };
                if matched == keep_matches {
                    out.insert(t.clone());
                }
            }
            Ok(out)
        }
        AlgExpr::Extend { input, col, value } => {
            let rel = eval(input, env)?;
            let mut cols = rel.cols().to_vec();
            cols.push(*col);
            let mut out = Relation::new(cols);
            for t in rel.iter() {
                let v = eval_scalar(value, t)?;
                let mut fields = t.as_tuple().expect("tuple").to_vec();
                fields.push((*col, v));
                out.insert(Value::tuple(fields));
            }
            Ok(out)
        }
        AlgExpr::Nest { input, cols, into } => {
            let rel = eval(input, env)?;
            let group_cols: Vec<Sym> = rel
                .cols()
                .iter()
                .filter(|c| !cols.contains(c))
                .copied()
                .collect();
            let mut groups: FxHashMap<Vec<Value>, Vec<Value>> = FxHashMap::default();
            let mut order: Vec<Vec<Value>> = Vec::new();
            for t in rel.iter() {
                let key: Vec<Value> = group_cols
                    .iter()
                    .map(|c| {
                        t.field(*c).cloned().ok_or(AlgError::UnknownColumn {
                            rel: format!("{:?}", rel.cols()),
                            col: *c,
                        })
                    })
                    .collect::<Result<_, _>>()?;
                let elem = if cols.len() == 1 {
                    t.field(cols[0]).cloned().ok_or(AlgError::UnknownColumn {
                        rel: format!("{:?}", rel.cols()),
                        col: cols[0],
                    })?
                } else {
                    Value::tuple(
                        cols.iter()
                            .map(|c| {
                                Ok((
                                    *c,
                                    t.field(*c).cloned().ok_or(AlgError::UnknownColumn {
                                        rel: format!("{:?}", rel.cols()),
                                        col: *c,
                                    })?,
                                ))
                            })
                            .collect::<Result<Vec<_>, AlgError>>()?,
                    )
                };
                if !groups.contains_key(&key) {
                    order.push(key.clone());
                }
                groups.entry(key).or_default().push(elem);
            }
            let mut out_cols = group_cols.clone();
            out_cols.push(*into);
            let mut out = Relation::new(out_cols);
            for key in order {
                let elems = groups.remove(&key).expect("group exists");
                let mut fields: Vec<(Sym, Value)> = group_cols.iter().cloned().zip(key).collect();
                fields.push((*into, Value::set(elems)));
                out.insert(Value::tuple(fields));
            }
            Ok(out)
        }
        AlgExpr::Unnest { input, col } => {
            let rel = eval(input, env)?;
            if !rel.has_col(*col) {
                return Err(AlgError::UnknownColumn {
                    rel: format!("{:?}", rel.cols()),
                    col: *col,
                });
            }
            let mut out = Relation::new(rel.cols().to_vec());
            for t in rel.iter() {
                let coll = t.field(*col).expect("checked column");
                let elems = coll.elements().ok_or(AlgError::NotACollection(*col))?;
                for e in elems {
                    let fields: Vec<(Sym, Value)> = t
                        .as_tuple()
                        .expect("tuple")
                        .iter()
                        .map(|(l, v)| {
                            if l == col {
                                (*l, e.clone())
                            } else {
                                (*l, v.clone())
                            }
                        })
                        .collect();
                    out.insert(Value::tuple(fields));
                }
            }
            Ok(out)
        }
        AlgExpr::Aggregate {
            input,
            group,
            agg,
            on,
            into,
        } => {
            let rel = eval(input, env)?;
            let mut groups: FxHashMap<Vec<Value>, Vec<Value>> = FxHashMap::default();
            let mut order: Vec<Vec<Value>> = Vec::new();
            for t in rel.iter() {
                let key: Vec<Value> = group
                    .iter()
                    .map(|c| {
                        t.field(*c).cloned().ok_or(AlgError::UnknownColumn {
                            rel: format!("{:?}", rel.cols()),
                            col: *c,
                        })
                    })
                    .collect::<Result<_, _>>()?;
                let v = t.field(*on).cloned().ok_or(AlgError::UnknownColumn {
                    rel: format!("{:?}", rel.cols()),
                    col: *on,
                })?;
                if !groups.contains_key(&key) {
                    order.push(key.clone());
                }
                groups.entry(key).or_default().push(v);
            }
            let mut out_cols = group.clone();
            out_cols.push(*into);
            let mut out = Relation::new(out_cols);
            for key in order {
                let vals = groups.remove(&key).expect("group exists");
                let agg_v = apply_agg(*agg, &vals)?;
                let mut fields: Vec<(Sym, Value)> = group.iter().cloned().zip(key).collect();
                fields.push((*into, agg_v));
                out.insert(Value::tuple(fields));
            }
            Ok(out)
        }
        AlgExpr::Fixpoint {
            rec,
            base,
            step,
            mode,
        } => {
            let base_rel = eval(base, env)?;
            let linear = step.count_refs(*rec) <= 1;
            match (mode, linear) {
                (FixpointMode::Delta, true) => fixpoint_delta(*rec, base_rel, step, env),
                // Non-linear steps are evaluated naively even in Delta mode
                // (semi-naive needs the full mixed delta there).
                _ => fixpoint_naive(*rec, base_rel, step, env),
            }
        }
    }
}

fn check_same_cols(l: &Relation, r: &Relation) -> Result<(), AlgError> {
    let mut lc: Vec<Sym> = l.cols().to_vec();
    let mut rc: Vec<Sym> = r.cols().to_vec();
    lc.sort();
    rc.sort();
    if lc != rc {
        return Err(AlgError::SchemaMismatch {
            left: l.cols().to_vec(),
            right: r.cols().to_vec(),
        });
    }
    Ok(())
}

fn fixpoint_naive(
    rec: Sym,
    base: Relation,
    step: &AlgExpr,
    env: &Env,
) -> Result<Relation, AlgError> {
    let mut acc = base;
    let mut env = env.clone();
    for _ in 0..MAX_FIXPOINT_STEPS {
        env.bind(rec, acc.clone());
        let new = eval(step, &env)?;
        if acc.extend_from(&new) == 0 {
            return Ok(acc);
        }
    }
    Err(AlgError::FixpointDiverged {
        steps: MAX_FIXPOINT_STEPS,
    })
}

fn fixpoint_delta(
    rec: Sym,
    base: Relation,
    step: &AlgExpr,
    env: &Env,
) -> Result<Relation, AlgError> {
    let mut acc = base.clone();
    let mut delta = base;
    let mut env = env.clone();
    for _ in 0..MAX_FIXPOINT_STEPS {
        if delta.is_empty() {
            return Ok(acc);
        }
        env.bind(rec, delta.clone());
        let derived = eval(step, &env)?;
        let mut fresh = Relation::new(acc.cols().to_vec());
        for t in derived.iter() {
            if !acc.contains(t) {
                fresh.insert(t.clone());
            }
        }
        acc.extend_from(&fresh);
        delta = fresh;
    }
    Err(AlgError::FixpointDiverged {
        steps: MAX_FIXPOINT_STEPS,
    })
}

/// Evaluate a scalar against a tuple.
pub fn eval_scalar(s: &Scalar, tuple: &Value) -> Result<Value, AlgError> {
    match s {
        Scalar::Col(c) => tuple.field(*c).cloned().ok_or(AlgError::UnknownColumn {
            rel: tuple.to_string(),
            col: *c,
        }),
        Scalar::Const(v) => Ok(v.clone()),
        Scalar::Add(a, b) => int_op(a, b, tuple, |x, y| x.checked_add(y)),
        Scalar::Sub(a, b) => int_op(a, b, tuple, |x, y| x.checked_sub(y)),
        Scalar::Mul(a, b) => int_op(a, b, tuple, |x, y| x.checked_mul(y)),
        Scalar::Div(a, b) => int_op(a, b, tuple, |x, y| x.checked_div(y)),
        Scalar::Tuple(fs) => {
            let mut fields = Vec::new();
            for (l, e) in fs {
                fields.push((*l, eval_scalar(e, tuple)?));
            }
            Ok(Value::tuple(fields))
        }
        Scalar::Field(e, l) => {
            let v = eval_scalar(e, tuple)?;
            v.field(*l)
                .cloned()
                .ok_or_else(|| AlgError::BadValue(format!("no field `{l}` in {v}")))
        }
    }
}

fn int_op(
    a: &Scalar,
    b: &Scalar,
    tuple: &Value,
    f: impl Fn(i64, i64) -> Option<i64>,
) -> Result<Value, AlgError> {
    let (x, y) = (eval_scalar(a, tuple)?, eval_scalar(b, tuple)?);
    match (x.as_int(), y.as_int()) {
        (Some(x), Some(y)) => f(x, y)
            .map(Value::Int)
            .ok_or_else(|| AlgError::BadValue("integer overflow or division by zero".into())),
        _ => Err(AlgError::BadValue(format!(
            "arithmetic on non-integers: {x}, {y}"
        ))),
    }
}

/// Evaluate a predicate against a tuple.
pub fn eval_pred(p: &Pred, tuple: &Value) -> Result<bool, AlgError> {
    match p {
        Pred::True => Ok(true),
        Pred::Cmp(op, a, b) => {
            let (x, y) = (eval_scalar(a, tuple)?, eval_scalar(b, tuple)?);
            Ok(match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            })
        }
        Pred::In(e, coll) => {
            let (x, c) = (eval_scalar(e, tuple)?, eval_scalar(coll, tuple)?);
            c.contains(&x)
                .ok_or_else(|| AlgError::BadValue(format!("`in` on non-collection {c}")))
        }
        Pred::And(a, b) => Ok(eval_pred(a, tuple)? && eval_pred(b, tuple)?),
        Pred::Or(a, b) => Ok(eval_pred(a, tuple)? || eval_pred(b, tuple)?),
        Pred::Not(i) => Ok(!eval_pred(i, tuple)?),
    }
}

fn apply_agg(agg: AggFun, vals: &[Value]) -> Result<Value, AlgError> {
    let ints = || -> Result<Vec<i64>, AlgError> {
        vals.iter()
            .map(|v| {
                v.as_int()
                    .ok_or_else(|| AlgError::BadValue(format!("aggregate on non-integer {v}")))
            })
            .collect()
    };
    Ok(match agg {
        AggFun::Count => Value::Int(vals.len() as i64),
        AggFun::Sum => Value::Int(ints()?.iter().sum()),
        AggFun::Min => Value::Int(
            ints()?
                .into_iter()
                .min()
                .ok_or_else(|| AlgError::BadValue("min of empty group".into()))?,
        ),
        AggFun::Max => Value::Int(
            ints()?
                .into_iter()
                .max()
                .ok_or_else(|| AlgError::BadValue("max of empty group".into()))?,
        ),
        AggFun::Avg => {
            let xs = ints()?;
            if xs.is_empty() {
                return Err(AlgError::BadValue("avg of empty group".into()));
            }
            Value::Int(xs.iter().sum::<i64>() / xs.len() as i64)
        }
        AggFun::CollectSet => Value::set(vals.iter().cloned()),
        AggFun::CollectMultiset => Value::multiset(vals.iter().cloned()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(a: i64, b: i64) -> Value {
        Value::tuple([("src", Value::Int(a)), ("dst", Value::Int(b))])
    }

    fn edges(pairs: &[(i64, i64)]) -> Relation {
        Relation::from_rows(["src", "dst"], pairs.iter().map(|&(a, b)| edge(a, b)))
    }

    fn env_with(name: &str, rel: Relation) -> Env {
        let mut env = Env::new();
        env.bind(name, rel);
        env
    }

    #[test]
    fn select_and_project() {
        let env = env_with("e", edges(&[(1, 2), (2, 3), (3, 1)]));
        let expr = AlgExpr::Rel(Sym::new("e"))
            .select(Pred::Cmp(
                CmpOp::Gt,
                Scalar::col("src"),
                Scalar::Const(Value::Int(1)),
            ))
            .project(["dst"]);
        let r = eval(&expr, &env).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Value::tuple([("dst", Value::Int(3))])));
        assert!(r.contains(&Value::tuple([("dst", Value::Int(1))])));
    }

    #[test]
    fn natural_join_composes_edges() {
        let env = env_with("e", edges(&[(1, 2), (2, 3)]));
        // e(src, dst) ⋈ e(dst → src', …) — rename to share the middle node.
        let left = AlgExpr::Rel(Sym::new("e")).rename("dst", "mid");
        let right = AlgExpr::Rel(Sym::new("e"))
            .rename("src", "mid")
            .rename("dst", "far");
        let joined = left.join(right).project(["src", "far"]);
        let r = eval(&joined, &env).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Value::tuple([
            ("src", Value::Int(1)),
            ("far", Value::Int(3))
        ])));
    }

    #[test]
    fn union_diff_intersect() {
        let env = {
            let mut e = Env::new();
            e.bind("a", edges(&[(1, 1), (2, 2)]));
            e.bind("b", edges(&[(2, 2), (3, 3)]));
            e
        };
        let u = eval(
            &AlgExpr::Rel(Sym::new("a")).union(AlgExpr::Rel(Sym::new("b"))),
            &env,
        )
        .unwrap();
        assert_eq!(u.len(), 3);
        let d = eval(
            &AlgExpr::Diff {
                left: Box::new(AlgExpr::Rel(Sym::new("a"))),
                right: Box::new(AlgExpr::Rel(Sym::new("b"))),
            },
            &env,
        )
        .unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.contains(&edge(1, 1)));
        let i = eval(
            &AlgExpr::Intersect {
                left: Box::new(AlgExpr::Rel(Sym::new("a"))),
                right: Box::new(AlgExpr::Rel(Sym::new("b"))),
            },
            &env,
        )
        .unwrap();
        assert_eq!(i.len(), 1);
        assert!(i.contains(&edge(2, 2)));
    }

    #[test]
    fn union_requires_same_columns() {
        let mut env = Env::new();
        env.bind("a", edges(&[(1, 1)]));
        env.bind(
            "b",
            Relation::from_rows(["x"], [Value::tuple([("x", Value::Int(1))])]),
        );
        let err = eval(
            &AlgExpr::Rel(Sym::new("a")).union(AlgExpr::Rel(Sym::new("b"))),
            &env,
        )
        .unwrap_err();
        assert!(matches!(err, AlgError::SchemaMismatch { .. }));
    }

    #[test]
    fn extend_computes_columns() {
        let env = env_with("e", edges(&[(1, 2)]));
        let expr = AlgExpr::Extend {
            input: Box::new(AlgExpr::Rel(Sym::new("e"))),
            col: Sym::new("sum"),
            value: Scalar::Add(Box::new(Scalar::col("src")), Box::new(Scalar::col("dst"))),
        };
        let r = eval(&expr, &env).unwrap();
        let t = r.iter().next().unwrap();
        assert_eq!(t.field(Sym::new("sum")), Some(&Value::Int(3)));
    }

    #[test]
    fn nest_groups_into_sets_and_unnest_inverts() {
        let env = env_with("e", edges(&[(1, 2), (1, 3), (2, 4)]));
        let nested = AlgExpr::Nest {
            input: Box::new(AlgExpr::Rel(Sym::new("e"))),
            cols: vec![Sym::new("dst")],
            into: Sym::new("dsts"),
        };
        let n = eval(&nested, &env).unwrap();
        assert_eq!(n.len(), 2);
        assert!(n.contains(&Value::tuple([
            ("src", Value::Int(1)),
            ("dsts", Value::set([Value::Int(2), Value::Int(3)]))
        ])));
        // Unnest back.
        let un = AlgExpr::Unnest {
            input: Box::new(nested),
            col: Sym::new("dsts"),
        };
        let u = eval(&un, &env).unwrap();
        assert_eq!(u.len(), 3);
        assert!(u.contains(&Value::tuple([
            ("src", Value::Int(1)),
            ("dsts", Value::Int(3))
        ])));
    }

    #[test]
    fn aggregate_count_and_sum() {
        let env = env_with("e", edges(&[(1, 2), (1, 3), (2, 4)]));
        let expr = AlgExpr::Aggregate {
            input: Box::new(AlgExpr::Rel(Sym::new("e"))),
            group: vec![Sym::new("src")],
            agg: AggFun::Sum,
            on: Sym::new("dst"),
            into: Sym::new("total"),
        };
        let r = eval(&expr, &env).unwrap();
        assert!(r.contains(&Value::tuple([
            ("src", Value::Int(1)),
            ("total", Value::Int(5))
        ])));
        assert!(r.contains(&Value::tuple([
            ("src", Value::Int(2)),
            ("total", Value::Int(4))
        ])));
    }

    /// Transitive closure over a chain, in both fixpoint modes; results must
    /// agree (the E1 experiment measures their speed difference).
    #[test]
    fn fixpoint_naive_and_delta_agree_on_closure() {
        let chain: Vec<(i64, i64)> = (0..30).map(|i| (i, i + 1)).collect();
        let env = env_with("e", edges(&chain));
        let tc = Sym::new("tc");
        let step = AlgExpr::Rel(tc)
            .rename("dst", "mid")
            .join(AlgExpr::Rel(Sym::new("e")).rename("src", "mid"))
            .project(["src", "dst"]);
        let mk = |mode| AlgExpr::Fixpoint {
            rec: tc,
            base: Box::new(AlgExpr::Rel(Sym::new("e"))),
            step: Box::new(step.clone()),
            mode,
        };
        let naive = eval(&mk(FixpointMode::Naive), &env).unwrap();
        let delta = eval(&mk(FixpointMode::Delta), &env).unwrap();
        // Closure of a 31-node chain: 31*30/2 pairs.
        assert_eq!(naive.len(), 31 * 30 / 2);
        assert!(naive.set_eq(&delta));
    }

    #[test]
    fn nonlinear_fixpoint_falls_back_to_naive_in_delta_mode() {
        // tc ⋈ tc — a non-linear step; Delta mode must still be correct.
        let env = env_with("e", edges(&[(1, 2), (2, 3), (3, 4)]));
        let tc = Sym::new("tc");
        let step = AlgExpr::Rel(tc)
            .rename("dst", "mid")
            .join(AlgExpr::Rel(tc).rename("src", "mid"))
            .project(["src", "dst"]);
        let fx = AlgExpr::Fixpoint {
            rec: tc,
            base: Box::new(AlgExpr::Rel(Sym::new("e"))),
            step: Box::new(step),
            mode: FixpointMode::Delta,
        };
        let r = eval(&fx, &env).unwrap();
        assert_eq!(r.len(), 6); // closure of the 4-chain
    }

    #[test]
    fn semijoin_and_antijoin_partition_the_left() {
        let mut env = Env::new();
        env.bind("l", edges(&[(1, 10), (2, 20), (3, 30)]));
        // Right side shares only `src`.
        let right = Relation::from_rows(
            ["src"],
            [
                Value::tuple([("src", Value::Int(1))]),
                Value::tuple([("src", Value::Int(3))]),
            ],
        );
        env.bind("r", right);
        let semi = eval(
            &AlgExpr::SemiJoin {
                left: Box::new(AlgExpr::Rel(Sym::new("l"))),
                right: Box::new(AlgExpr::Rel(Sym::new("r"))),
            },
            &env,
        )
        .unwrap();
        let anti = eval(
            &AlgExpr::AntiJoin {
                left: Box::new(AlgExpr::Rel(Sym::new("l"))),
                right: Box::new(AlgExpr::Rel(Sym::new("r"))),
            },
            &env,
        )
        .unwrap();
        assert_eq!(semi.len(), 2);
        assert_eq!(anti.len(), 1);
        assert!(anti.contains(&edge(2, 20)));
        // Semi ∪ anti = left.
        let mut both = semi.clone();
        both.extend_from(&anti);
        assert!(both.set_eq(env.get(Sym::new("l")).unwrap()));
    }

    #[test]
    fn antijoin_with_no_shared_columns_tests_emptiness() {
        let mut env = Env::new();
        env.bind("l", edges(&[(1, 10)]));
        env.bind("empty", Relation::new(["z"]));
        let anti = eval(
            &AlgExpr::AntiJoin {
                left: Box::new(AlgExpr::Rel(Sym::new("l"))),
                right: Box::new(AlgExpr::Rel(Sym::new("empty"))),
            },
            &env,
        )
        .unwrap();
        assert_eq!(anti.len(), 1); // right empty → nothing matches → keep all
        env.bind(
            "nonempty",
            Relation::from_rows(["z"], [Value::tuple([("z", Value::Int(0))])]),
        );
        let anti2 = eval(
            &AlgExpr::AntiJoin {
                left: Box::new(AlgExpr::Rel(Sym::new("l"))),
                right: Box::new(AlgExpr::Rel(Sym::new("nonempty"))),
            },
            &env,
        )
        .unwrap();
        assert_eq!(anti2.len(), 0);
    }

    #[test]
    fn product_rejects_overlap() {
        let env = env_with("e", edges(&[(1, 2)]));
        let err = eval(
            &AlgExpr::Product {
                left: Box::new(AlgExpr::Rel(Sym::new("e"))),
                right: Box::new(AlgExpr::Rel(Sym::new("e"))),
            },
            &env,
        )
        .unwrap_err();
        assert!(matches!(err, AlgError::OverlappingColumns(_)));
    }

    #[test]
    fn pred_in_tests_collection_membership() {
        let rel = Relation::from_rows(
            ["x", "s"],
            [Value::tuple([
                ("x", Value::Int(1)),
                ("s", Value::set([Value::Int(1), Value::Int(2)])),
            ])],
        );
        let env = env_with("r", rel);
        let expr = AlgExpr::Rel(Sym::new("r")).select(Pred::In(Scalar::col("x"), Scalar::col("s")));
        assert_eq!(eval(&expr, &env).unwrap().len(), 1);
    }

    #[test]
    fn unknown_relation_and_column_errors() {
        let env = Env::new();
        assert!(matches!(
            eval(&AlgExpr::Rel(Sym::new("ghost")), &env),
            Err(AlgError::UnknownRelation(_))
        ));
        let env = env_with("e", edges(&[(1, 2)]));
        assert!(matches!(
            eval(&AlgExpr::Rel(Sym::new("e")).project(["zzz"]), &env),
            Err(AlgError::UnknownColumn { .. })
        ));
    }
}
