//! Evaluator for the extended relational algebra.
//!
//! Evaluation runs through an [`Evaluator`] session that caches, across
//! fixpoint rounds and repeated calls, the results of sub-expressions that do
//! not depend on any *volatile* relation (a fixpoint's recursive name, or a
//! delta relation rebound by the engine between rounds), along with the hash
//! tables built for `Join`/`SemiJoin`/`AntiJoin` right sides. The one-shot
//! [`eval`] wrapper keeps the original convenience API.

use std::time::Instant;

use rustc_hash::{FxHashMap, FxHashSet};

use logres_model::{Sym, Value};

use crate::error::AlgError;
use crate::expr::{AggFun, AlgExpr, CmpOp, FixpointMode, Pred, Scalar};
use crate::relation::Relation;

/// Upper bound on fixpoint rounds; exceeded means divergence is reported
/// rather than looping forever (the underlying language cannot guarantee
/// termination — Appendix B).
pub const MAX_FIXPOINT_STEPS: usize = 1_000_000;

/// Named relations visible to an expression.
#[derive(Debug, Clone, Default)]
pub struct Env {
    rels: FxHashMap<Sym, Relation>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Bind (or rebind) a relation.
    pub fn bind(&mut self, name: impl Into<Sym>, rel: Relation) {
        self.rels.insert(name.into(), rel);
    }

    /// Look up a relation.
    pub fn get(&self, name: Sym) -> Option<&Relation> {
        self.rels.get(&name)
    }
}

/// Work counters exposed by an [`Evaluator`] session. The engine surfaces
/// these through the metrics registry so tests can pin that join tables are
/// built once per fixpoint rather than once per round.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds executed (one `step` evaluation each).
    pub rounds: u64,
    /// Hash tables built for `Join`/`SemiJoin`/`AntiJoin` right sides.
    pub hash_builds: u64,
    /// Probes against those tables (one per left tuple).
    pub probes: u64,
    /// Sub-expression evaluations answered from the memo.
    pub memo_hits: u64,
}

/// Per-operator-node runtime counters, collected only when profiling is
/// switched on via [`Evaluator::enable_profiling`]. Counters are keyed by
/// node identity (the expression must outlive the session, as for the memo),
/// so repeated evaluations of the same node — one per fixpoint or semi-naive
/// round — accumulate. `nanos` is *inclusive* wall time (the node plus the
/// children it actually evaluated); every other field is a deterministic
/// count, bit-identical across runs and thread counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    /// Times this node was evaluated (memo hits included).
    pub evals: u64,
    /// Total rows returned by the node's direct children across all evals.
    pub rows_in: u64,
    /// Total rows this node returned across all evals.
    pub rows_out: u64,
    /// Hash tables built for this node's right side (joins only).
    pub hash_builds: u64,
    /// Probes against this node's hash table (joins only).
    pub probes: u64,
    /// Evaluations of this node answered from the memo.
    pub memo_hits: u64,
    /// Inclusive wall-clock nanoseconds spent evaluating this node.
    pub nanos: u64,
}

/// A materialized hash table for a `Join` right side.
struct JoinTable {
    left_cols: Vec<Sym>,
    shared: Vec<Sym>,
    right_only: Vec<Sym>,
    rows: FxHashMap<Vec<Value>, Vec<Value>>,
}

/// A materialized key set for a `SemiJoin`/`AntiJoin` right side.
struct KeyTable {
    left_cols: Vec<Sym>,
    shared: Vec<Sym>,
    keys: FxHashSet<Vec<Value>>,
    right_empty: bool,
}

/// A caching evaluation session over a fixed base environment.
///
/// Relations named in `base` are treated as immutable for the session;
/// sub-expressions that reach only those (and constants) are memoized by node
/// identity. Names rebound through [`Evaluator::bind`] — and every fixpoint's
/// recursive name — are *volatile*: results depending on them are recomputed,
/// but the hash tables and memo entries for their stable siblings persist
/// across rounds, which is where the semi-naive win comes from.
pub struct Evaluator<'a> {
    base: &'a Env,
    /// Volatile bindings, looked up before `base`.
    overlay: FxHashMap<Sym, Relation>,
    /// Volatile names with a shadow depth (fixpoints nest).
    volatile: FxHashMap<Sym, u32>,
    /// Stable node ids: address → id, assigned by [`Evaluator::register_plan`]
    /// (or lazily on first visit). Every cache below is keyed by these ids,
    /// never by raw addresses, so re-registering a rebuilt plan that happens
    /// to reuse a freed allocation cannot alias a stale entry — fresh ids
    /// simply orphan the old ones.
    ids: FxHashMap<usize, u64>,
    next_id: u64,
    /// Node-id memo for volatile-free sub-expressions.
    memo: FxHashMap<u64, Relation>,
    join_tables: FxHashMap<u64, JoinTable>,
    key_tables: FxHashMap<u64, KeyTable>,
    stats: EvalStats,
    /// When on, per-node [`OpStats`] are accumulated in `op_stats`; the off
    /// path pays exactly one branch per node evaluation.
    profiling: bool,
    op_stats: FxHashMap<u64, OpStats>,
    /// One frame per in-flight profiled evaluation: the rows returned by the
    /// node's direct children so far (becomes the node's `rows_in`).
    frames: Vec<u64>,
}

impl<'a> Evaluator<'a> {
    /// New session over `base`; all of `base`'s bindings are stable.
    pub fn new(base: &'a Env) -> Evaluator<'a> {
        Evaluator {
            base,
            overlay: FxHashMap::default(),
            volatile: FxHashMap::default(),
            ids: FxHashMap::default(),
            next_id: 0,
            memo: FxHashMap::default(),
            join_tables: FxHashMap::default(),
            key_tables: FxHashMap::default(),
            stats: EvalStats::default(),
            profiling: false,
            op_stats: FxHashMap::default(),
            frames: Vec::new(),
        }
    }

    /// Turn on per-node operator profiling for the rest of the session.
    pub fn enable_profiling(&mut self) {
        self.profiling = true;
    }

    /// The accumulated [`OpStats`] for a node (zero when the node was never
    /// evaluated or profiling was off).
    pub fn op_stats_for(&self, expr: &AlgExpr) -> OpStats {
        self.node_id_of(expr)
            .and_then(|id| self.op_stats.get(&id).copied())
            .unwrap_or_default()
    }

    /// Assign fresh stable ids to every node of `plan`. Caches (memo, join
    /// tables, op stats) are keyed by these ids; registering a plan again —
    /// e.g. after a recompile that reuses freed allocations — hands out new
    /// ids, so entries belonging to a dropped plan can never be resurrected
    /// through an aliased address.
    pub fn register_plan(&mut self, plan: &AlgExpr) {
        let mut stack = vec![plan];
        while let Some(e) = stack.pop() {
            self.next_id += 1;
            self.ids.insert(e as *const AlgExpr as usize, self.next_id);
            stack.extend(e.children());
        }
    }

    /// The stable id of a registered node, or `None` when the node was never
    /// registered nor evaluated in this session.
    pub fn node_id_of(&self, expr: &AlgExpr) -> Option<u64> {
        self.ids.get(&(expr as *const AlgExpr as usize)).copied()
    }

    /// The stable id of a node, assigning one on first sight (one-shot
    /// evaluations don't pre-register their plan).
    fn node_id(&mut self, expr: &AlgExpr) -> u64 {
        let ptr = expr as *const AlgExpr as usize;
        if let Some(id) = self.ids.get(&ptr) {
            return *id;
        }
        self.next_id += 1;
        self.ids.insert(ptr, self.next_id);
        self.next_id
    }

    /// Bind (or rebind) a volatile relation. The name is marked volatile for
    /// the rest of the session, so no cached result can go stale through it.
    pub fn bind(&mut self, name: impl Into<Sym>, rel: Relation) {
        let name = name.into();
        self.volatile.entry(name).or_insert(1);
        self.overlay.insert(name, rel);
    }

    /// Extend an existing volatile binding in place with the rows of `more`,
    /// returning how many were new. Cheaper than [`Evaluator::bind`] with a
    /// grown clone when a relation accretes across semi-naive rounds; safe
    /// because volatile names never participate in any cache.
    pub fn extend_binding(&mut self, name: impl Into<Sym>, more: &Relation) -> usize {
        let name = name.into();
        self.volatile.entry(name).or_insert(1);
        match self.overlay.get_mut(&name) {
            Some(rel) => rel.extend_from(more),
            None => {
                let mut rel = self
                    .base
                    .get(name)
                    .cloned()
                    .unwrap_or_else(|| Relation::new(more.cols().to_vec()));
                let added = rel.extend_from(more);
                self.overlay.insert(name, rel);
                added
            }
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    fn note_hash_build(&mut self, key: u64) {
        self.stats.hash_builds += 1;
        if self.profiling {
            self.op_stats.entry(key).or_default().hash_builds += 1;
        }
    }

    fn note_probes(&mut self, key: u64, probes: u64) {
        self.stats.probes += probes;
        if self.profiling {
            self.op_stats.entry(key).or_default().probes += probes;
        }
    }

    /// Evaluate an expression. The expression must outlive the session —
    /// cached results are keyed by node identity.
    pub fn eval(&mut self, expr: &'a AlgExpr) -> Result<Relation, AlgError> {
        self.eval_dep(expr).map(|(rel, _)| rel)
    }

    /// Evaluate, also reporting whether the result depends on any volatile
    /// name (in which case it was not memoized). When profiling, wrap the
    /// evaluation in an [`OpStats`] frame: inclusive wall time, the rows the
    /// direct children produced (`rows_in`), and the rows returned
    /// (`rows_out`, also credited to the parent frame's `rows_in`).
    fn eval_dep(&mut self, expr: &'a AlgExpr) -> Result<(Relation, bool), AlgError> {
        if !self.profiling {
            return self.eval_dep_inner(expr);
        }
        let start = Instant::now();
        self.frames.push(0);
        let result = self.eval_dep_inner(expr);
        let child_rows = self.frames.pop().expect("frame pushed above");
        if let Ok((rel, _)) = &result {
            let rows_out = rel.len() as u64;
            let key = self.node_id(expr);
            let s = self.op_stats.entry(key).or_default();
            s.evals += 1;
            s.rows_in += child_rows;
            s.rows_out += rows_out;
            s.nanos += start.elapsed().as_nanos() as u64;
            if let Some(parent) = self.frames.last_mut() {
                *parent += rows_out;
            }
        }
        result
    }

    fn eval_dep_inner(&mut self, expr: &'a AlgExpr) -> Result<(Relation, bool), AlgError> {
        match expr {
            AlgExpr::Rel(name) => {
                let dep = self.volatile.contains_key(name);
                let rel = match self.overlay.get(name) {
                    Some(r) => r.clone(),
                    None => self
                        .base
                        .get(*name)
                        .cloned()
                        .ok_or(AlgError::UnknownRelation(*name))?,
                };
                return Ok((rel, dep));
            }
            AlgExpr::Const(rel) => return Ok((rel.clone(), false)),
            _ => {}
        }
        let key = self.node_id(expr);
        if let Some(rel) = self.memo.get(&key) {
            self.stats.memo_hits += 1;
            let rel = rel.clone();
            if self.profiling {
                self.op_stats.entry(key).or_default().memo_hits += 1;
            }
            return Ok((rel, false));
        }
        let (rel, dep) = self.eval_node(expr)?;
        if !dep {
            self.memo.insert(key, rel.clone());
        }
        Ok((rel, dep))
    }

    fn eval_node(&mut self, expr: &'a AlgExpr) -> Result<(Relation, bool), AlgError> {
        match expr {
            AlgExpr::Rel(_) | AlgExpr::Const(_) => unreachable!("handled in eval_dep_inner"),
            AlgExpr::Select { input, pred } => {
                let (rel, dep) = self.eval_dep(input)?;
                let mut out = Relation::new(rel.cols().to_vec());
                for t in rel.iter() {
                    if eval_pred(pred, t)? {
                        out.insert(t.clone());
                    }
                }
                Ok((out, dep))
            }
            AlgExpr::Project { input, cols } => {
                let (rel, dep) = self.eval_dep(input)?;
                for c in cols {
                    if !rel.has_col(*c) {
                        return Err(AlgError::UnknownColumn {
                            rel: format!("{:?}", rel.cols()),
                            col: *c,
                        });
                    }
                }
                let mut out = Relation::new(cols.clone());
                for t in rel.iter() {
                    let fields: Vec<(Sym, Value)> = cols
                        .iter()
                        .map(|c| (*c, t.field(*c).expect("checked column").clone()))
                        .collect();
                    out.insert(Value::tuple(fields));
                }
                Ok((out, dep))
            }
            AlgExpr::Rename { input, from, to } => {
                let (rel, dep) = self.eval_dep(input)?;
                if !rel.has_col(*from) {
                    return Err(AlgError::UnknownColumn {
                        rel: format!("{:?}", rel.cols()),
                        col: *from,
                    });
                }
                let cols: Vec<Sym> = rel
                    .cols()
                    .iter()
                    .map(|c| if c == from { *to } else { *c })
                    .collect();
                let mut out = Relation::new(cols);
                for t in rel.iter() {
                    let fields: Vec<(Sym, Value)> = t
                        .as_tuple()
                        .expect("relation rows are tuples")
                        .iter()
                        .map(|(l, v)| (if l == from { *to } else { *l }, v.clone()))
                        .collect();
                    out.insert(Value::tuple(fields));
                }
                Ok((out, dep))
            }
            AlgExpr::Product { left, right } => {
                let (l, ldep) = self.eval_dep(left)?;
                let (r, rdep) = self.eval_dep(right)?;
                let overlap: Vec<Sym> = l
                    .cols()
                    .iter()
                    .filter(|c| r.has_col(**c))
                    .copied()
                    .collect();
                if !overlap.is_empty() {
                    return Err(AlgError::OverlappingColumns(overlap));
                }
                let mut cols = l.cols().to_vec();
                cols.extend_from_slice(r.cols());
                let mut out = Relation::new(cols);
                for lt in l.iter() {
                    for rt in r.iter() {
                        let mut fields = lt.as_tuple().expect("tuple").to_vec();
                        fields.extend(rt.as_tuple().expect("tuple").iter().cloned());
                        out.insert(Value::tuple(fields));
                    }
                }
                Ok((out, ldep || rdep))
            }
            AlgExpr::Join { left, right } => {
                let (l, ldep) = self.eval_dep(left)?;
                let key = self.node_id(expr);
                let cached = self
                    .join_tables
                    .get(&key)
                    .is_some_and(|t| t.left_cols == l.cols());
                if !cached {
                    let (r, rdep) = self.eval_dep(right)?;
                    let table = build_join_table(&l, &r);
                    self.note_hash_build(key);
                    if rdep {
                        // Right side is volatile: probe once, do not cache.
                        let (out, probes) = probe_join_table(&table, &l);
                        self.note_probes(key, probes);
                        return Ok((out, true));
                    }
                    self.join_tables.insert(key, table);
                }
                let table = self.join_tables.get(&key).expect("cached join table");
                let (out, probes) = probe_join_table(table, &l);
                self.note_probes(key, probes);
                Ok((out, ldep))
            }
            AlgExpr::Union { left, right } => {
                let (l, ldep) = self.eval_dep(left)?;
                let (r, rdep) = self.eval_dep(right)?;
                check_same_cols(&l, &r)?;
                let mut out = l;
                // Align field order by reconstructing through labels.
                for t in r.iter() {
                    out.insert(t.clone());
                }
                Ok((out, ldep || rdep))
            }
            AlgExpr::Diff { left, right } => {
                let (l, ldep) = self.eval_dep(left)?;
                let (r, rdep) = self.eval_dep(right)?;
                check_same_cols(&l, &r)?;
                let mut out = Relation::new(l.cols().to_vec());
                for t in l.iter() {
                    if !r.contains(t) {
                        out.insert(t.clone());
                    }
                }
                Ok((out, ldep || rdep))
            }
            AlgExpr::Intersect { left, right } => {
                let (l, ldep) = self.eval_dep(left)?;
                let (r, rdep) = self.eval_dep(right)?;
                check_same_cols(&l, &r)?;
                let mut out = Relation::new(l.cols().to_vec());
                for t in l.iter() {
                    if r.contains(t) {
                        out.insert(t.clone());
                    }
                }
                Ok((out, ldep || rdep))
            }
            AlgExpr::SemiJoin { left, right } | AlgExpr::AntiJoin { left, right } => {
                let keep_matches = matches!(expr, AlgExpr::SemiJoin { .. });
                let (l, ldep) = self.eval_dep(left)?;
                let key = self.node_id(expr);
                let cached = self
                    .key_tables
                    .get(&key)
                    .is_some_and(|t| t.left_cols == l.cols());
                if !cached {
                    let (r, rdep) = self.eval_dep(right)?;
                    let table = build_key_table(&l, &r);
                    self.note_hash_build(key);
                    if rdep {
                        let (out, probes) = probe_key_table(&table, &l, keep_matches);
                        self.note_probes(key, probes);
                        return Ok((out, true));
                    }
                    self.key_tables.insert(key, table);
                }
                let table = self.key_tables.get(&key).expect("cached key table");
                let (out, probes) = probe_key_table(table, &l, keep_matches);
                self.note_probes(key, probes);
                Ok((out, ldep))
            }
            AlgExpr::Extend { input, col, value } => {
                let (rel, dep) = self.eval_dep(input)?;
                let mut cols = rel.cols().to_vec();
                cols.push(*col);
                let mut out = Relation::new(cols);
                for t in rel.iter() {
                    let v = eval_scalar(value, t)?;
                    let mut fields = t.as_tuple().expect("tuple").to_vec();
                    fields.push((*col, v));
                    out.insert(Value::tuple(fields));
                }
                Ok((out, dep))
            }
            AlgExpr::Emit { input, pred, cols } => {
                if let AlgExpr::Join { left, right } = input.as_ref() {
                    return self.eval_emit_join(input, left, right, pred, cols);
                }
                let (rel, dep) = self.eval_dep(input)?;
                let mut out = Relation::new(emit_out_cols(cols));
                // Pure column remap with no residual predicate: resolve every
                // source to its fixed field index once and copy fields by
                // position, skipping the per-tuple lookups and label sort.
                if matches!(pred, Pred::True) {
                    if let Some(tpl) = pure_emit_template(cols, rel.cols()) {
                        for t in rel.iter() {
                            let fs = t.as_tuple().expect("relation rows are tuples");
                            out.insert(Value::Tuple(
                                tpl.iter().map(|&(c, i)| (c, fs[i].1.clone())).collect(),
                            ));
                        }
                        return Ok((out, dep));
                    }
                }
                for t in rel.iter() {
                    if eval_pred(pred, t)? {
                        out.insert(emit_tuple(cols, t)?);
                    }
                }
                Ok((out, dep))
            }
            AlgExpr::Nest { input, cols, into } => {
                let (rel, dep) = self.eval_dep(input)?;
                let group_cols: Vec<Sym> = rel
                    .cols()
                    .iter()
                    .filter(|c| !cols.contains(c))
                    .copied()
                    .collect();
                let mut groups: FxHashMap<Vec<Value>, Vec<Value>> = FxHashMap::default();
                let mut order: Vec<Vec<Value>> = Vec::new();
                for t in rel.iter() {
                    let key: Vec<Value> = group_cols
                        .iter()
                        .map(|c| {
                            t.field(*c).cloned().ok_or(AlgError::UnknownColumn {
                                rel: format!("{:?}", rel.cols()),
                                col: *c,
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    let elem = if cols.len() == 1 {
                        t.field(cols[0]).cloned().ok_or(AlgError::UnknownColumn {
                            rel: format!("{:?}", rel.cols()),
                            col: cols[0],
                        })?
                    } else {
                        Value::tuple(
                            cols.iter()
                                .map(|c| {
                                    Ok((
                                        *c,
                                        t.field(*c).cloned().ok_or(AlgError::UnknownColumn {
                                            rel: format!("{:?}", rel.cols()),
                                            col: *c,
                                        })?,
                                    ))
                                })
                                .collect::<Result<Vec<_>, AlgError>>()?,
                        )
                    };
                    if !groups.contains_key(&key) {
                        order.push(key.clone());
                    }
                    groups.entry(key).or_default().push(elem);
                }
                let mut out_cols = group_cols.clone();
                out_cols.push(*into);
                let mut out = Relation::new(out_cols);
                for key in order {
                    let elems = groups.remove(&key).expect("group exists");
                    let mut fields: Vec<(Sym, Value)> =
                        group_cols.iter().cloned().zip(key).collect();
                    fields.push((*into, Value::set(elems)));
                    out.insert(Value::tuple(fields));
                }
                Ok((out, dep))
            }
            AlgExpr::Unnest { input, col } => {
                let (rel, dep) = self.eval_dep(input)?;
                if !rel.has_col(*col) {
                    return Err(AlgError::UnknownColumn {
                        rel: format!("{:?}", rel.cols()),
                        col: *col,
                    });
                }
                let mut out = Relation::new(rel.cols().to_vec());
                for t in rel.iter() {
                    let coll = t.field(*col).expect("checked column");
                    let elems = coll.elements().ok_or(AlgError::NotACollection(*col))?;
                    for e in elems {
                        let fields: Vec<(Sym, Value)> = t
                            .as_tuple()
                            .expect("tuple")
                            .iter()
                            .map(|(l, v)| {
                                if l == col {
                                    (*l, e.clone())
                                } else {
                                    (*l, v.clone())
                                }
                            })
                            .collect();
                        out.insert(Value::tuple(fields));
                    }
                }
                Ok((out, dep))
            }
            AlgExpr::Aggregate {
                input,
                group,
                agg,
                on,
                into,
            } => {
                let (rel, dep) = self.eval_dep(input)?;
                let mut groups: FxHashMap<Vec<Value>, Vec<Value>> = FxHashMap::default();
                let mut order: Vec<Vec<Value>> = Vec::new();
                for t in rel.iter() {
                    let key: Vec<Value> = group
                        .iter()
                        .map(|c| {
                            t.field(*c).cloned().ok_or(AlgError::UnknownColumn {
                                rel: format!("{:?}", rel.cols()),
                                col: *c,
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    let v = t.field(*on).cloned().ok_or(AlgError::UnknownColumn {
                        rel: format!("{:?}", rel.cols()),
                        col: *on,
                    })?;
                    if !groups.contains_key(&key) {
                        order.push(key.clone());
                    }
                    groups.entry(key).or_default().push(v);
                }
                let mut out_cols = group.clone();
                out_cols.push(*into);
                let mut out = Relation::new(out_cols);
                for key in order {
                    let vals = groups.remove(&key).expect("group exists");
                    let agg_v = apply_agg(*agg, &vals)?;
                    let mut fields: Vec<(Sym, Value)> = group.iter().cloned().zip(key).collect();
                    fields.push((*into, agg_v));
                    out.insert(Value::tuple(fields));
                }
                Ok((out, dep))
            }
            AlgExpr::Fixpoint {
                rec,
                base,
                step,
                mode,
            } => {
                let (base_rel, _) = self.eval_dep(base)?;
                let linear = step.count_refs(*rec) <= 1;
                // The recursive name is volatile inside the fixpoint; shadow
                // any outer binding of the same name and restore it after.
                *self.volatile.entry(*rec).or_insert(0) += 1;
                let saved = self.overlay.remove(rec);
                let result = match (mode, linear) {
                    (FixpointMode::Delta, true) => self.fixpoint_delta(*rec, base_rel, step),
                    // Non-linear steps are evaluated naively even in Delta
                    // mode (semi-naive needs the full mixed delta there).
                    _ => self.fixpoint_naive(*rec, base_rel, step),
                };
                self.overlay.remove(rec);
                if let Some(prev) = saved {
                    self.overlay.insert(*rec, prev);
                }
                match self.volatile.get_mut(rec) {
                    Some(depth) if *depth > 1 => *depth -= 1,
                    _ => {
                        self.volatile.remove(rec);
                    }
                }
                // Conservatively never memoize a fixpoint result: its step's
                // dependence is not tracked through the rounds.
                result.map(|rel| (rel, true))
            }
        }
    }

    fn fixpoint_naive(
        &mut self,
        rec: Sym,
        base: Relation,
        step: &'a AlgExpr,
    ) -> Result<Relation, AlgError> {
        let mut acc = base;
        for _ in 0..MAX_FIXPOINT_STEPS {
            self.overlay.insert(rec, acc.clone());
            self.stats.rounds += 1;
            let (new, _) = self.eval_dep(step)?;
            if acc.extend_from(&new) == 0 {
                return Ok(acc);
            }
        }
        Err(AlgError::FixpointDiverged {
            steps: MAX_FIXPOINT_STEPS,
        })
    }

    fn fixpoint_delta(
        &mut self,
        rec: Sym,
        base: Relation,
        step: &'a AlgExpr,
    ) -> Result<Relation, AlgError> {
        let mut acc = base.clone();
        let mut delta = base;
        for _ in 0..MAX_FIXPOINT_STEPS {
            if delta.is_empty() {
                return Ok(acc);
            }
            self.overlay.insert(rec, delta);
            self.stats.rounds += 1;
            let (derived, _) = self.eval_dep(step)?;
            let mut fresh = Relation::new(acc.cols().to_vec());
            for t in derived.iter() {
                if !acc.contains(t) {
                    fresh.insert(t.clone());
                }
            }
            acc.extend_from(&fresh);
            delta = fresh;
        }
        Err(AlgError::FixpointDiverged {
            steps: MAX_FIXPOINT_STEPS,
        })
    }

    /// The `Emit`-over-`Join` fast path: probe the join's hash table and
    /// write head-layout tuples straight out of the probe, never
    /// materializing the joined relation. The hash table is cached under the
    /// *join* node's id with the same volatile-right discipline as the plain
    /// `Join` arm, so fusion does not change how often tables are built.
    ///
    /// Profiling attribution: the join node no longer passes through
    /// [`Evaluator::eval_dep`], so its [`OpStats`] are credited here by hand —
    /// inclusive time covers the input evaluations and the table build but
    /// *not* the probe loop, which stays on the emit node. The emit frame's
    /// `rows_in` is overwritten with the number of join pairs (the rows the
    /// absorbed reshape stages consumed), keeping row conservation: child
    /// `rows_out` == fused node `rows_in`.
    fn eval_emit_join(
        &mut self,
        join: &'a AlgExpr,
        left: &'a AlgExpr,
        right: &'a AlgExpr,
        pred: &Pred,
        cols: &[(Sym, Scalar)],
    ) -> Result<(Relation, bool), AlgError> {
        let start = self.profiling.then(Instant::now);
        let (l, ldep) = self.eval_dep(left)?;
        let key = self.node_id(join);
        let cached = self
            .join_tables
            .get(&key)
            .is_some_and(|t| t.left_cols == l.cols());
        let mut right_rows = 0u64;
        let mut volatile_right = None;
        if !cached {
            let (r, rdep) = self.eval_dep(right)?;
            right_rows = r.len() as u64;
            let table = build_join_table(&l, &r);
            self.note_hash_build(key);
            if rdep {
                // Right side is volatile: probe once, do not cache.
                volatile_right = Some(table);
            } else {
                self.join_tables.insert(key, table);
            }
        }
        let join_nanos = start.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let dep = ldep || volatile_right.is_some();
        let table = match &volatile_right {
            Some(t) => t,
            None => self.join_tables.get(&key).expect("cached join table"),
        };
        let (out, probes, pairs) = emit_probe(table, &l, pred, cols)?;
        self.note_probes(key, probes);
        if self.profiling {
            let s = self.op_stats.entry(key).or_default();
            s.evals += 1;
            s.rows_in += l.len() as u64 + right_rows;
            s.rows_out += pairs;
            s.nanos += join_nanos;
            if let Some(top) = self.frames.last_mut() {
                *top = pairs;
            }
        }
        Ok((out, dep))
    }
}

/// Evaluate an expression in a fresh single-shot session.
pub fn eval(expr: &AlgExpr, env: &Env) -> Result<Relation, AlgError> {
    Evaluator::new(env).eval(expr)
}

fn join_key(t: &Value, cols: &[Sym]) -> Vec<Value> {
    cols.iter()
        .map(|c| t.field(*c).expect("shared column").clone())
        .collect()
}

fn build_join_table(l: &Relation, r: &Relation) -> JoinTable {
    let shared: Vec<Sym> = l
        .cols()
        .iter()
        .filter(|c| r.has_col(**c))
        .copied()
        .collect();
    let right_only: Vec<Sym> = r
        .cols()
        .iter()
        .filter(|c| !l.has_col(**c))
        .copied()
        .collect();
    let mut rows: FxHashMap<Vec<Value>, Vec<Value>> = FxHashMap::default();
    for rt in r.iter() {
        rows.entry(join_key(rt, &shared))
            .or_default()
            .push(rt.clone());
    }
    JoinTable {
        left_cols: l.cols().to_vec(),
        shared,
        right_only,
        rows,
    }
}

fn probe_join_table(table: &JoinTable, l: &Relation) -> (Relation, u64) {
    let mut cols = table.left_cols.clone();
    cols.extend(table.right_only.iter().copied());
    let mut out = Relation::new(cols);
    let mut probes = 0u64;
    for lt in l.iter() {
        probes += 1;
        if let Some(matches) = table.rows.get(&join_key(lt, &table.shared)) {
            for rt in matches {
                let mut fields = lt.as_tuple().expect("tuple").to_vec();
                for c in &table.right_only {
                    fields.push((*c, rt.field(*c).expect("column").clone()));
                }
                out.insert(Value::tuple(fields));
            }
        }
    }
    (out, probes)
}

fn emit_out_cols(cols: &[(Sym, Scalar)]) -> Vec<Sym> {
    cols.iter().map(|(c, _)| *c).collect()
}

/// Build one output tuple of an `Emit` node from an input tuple.
fn emit_tuple(cols: &[(Sym, Scalar)], t: &Value) -> Result<Value, AlgError> {
    let fields: Vec<(Sym, Value)> = cols
        .iter()
        .map(|(c, s)| Ok((*c, eval_scalar(s, t)?)))
        .collect::<Result<_, AlgError>>()?;
    Ok(Value::tuple(fields))
}

/// Precompute a pure-column emit as positional copies: every scalar must be
/// a bare [`Scalar::Col`] resolvable in `in_cols`, and the output labels
/// must be distinct. Returns the output fields in sorted label order, each
/// paired with the field index it copies from — relation tuples store their
/// fields sorted by label, so the index is fixed across all rows. The
/// caller may then build `Value::Tuple` directly, skipping the per-tuple
/// label lookups and the canonicalizing sort.
fn pure_emit_template(cols: &[(Sym, Scalar)], in_cols: &[Sym]) -> Option<Vec<(Sym, usize)>> {
    let mut sorted_in: Vec<Sym> = in_cols.to_vec();
    sorted_in.sort();
    let mut tpl: Vec<(Sym, usize)> = cols
        .iter()
        .map(|(c, s)| match s {
            Scalar::Col(src) => sorted_in.binary_search(src).ok().map(|i| (*c, i)),
            _ => None,
        })
        .collect::<Option<_>>()?;
    tpl.sort_by_key(|&(c, _)| c);
    if tpl.windows(2).any(|w| w[0].0 == w[1].0) {
        return None;
    }
    Some(tpl)
}

/// One side of a join pair a pure probe template copies a field from.
enum PairSrc {
    Left(usize),
    Right(usize),
}

/// Probe a join table, filtering and reshaping each match directly into the
/// emit layout. Returns `(output, probes, pairs)` where `pairs` counts every
/// join match regardless of the residual predicate — the rows the join
/// *produced* and the absorbed reshape stages consumed.
fn emit_probe(
    table: &JoinTable,
    l: &Relation,
    pred: &Pred,
    cols: &[(Sym, Scalar)],
) -> Result<(Relation, u64, u64), AlgError> {
    let mut out = Relation::new(emit_out_cols(cols));
    let mut probes = 0u64;
    let mut pairs = 0u64;
    // Pure column remap with no residual predicate (the common rule-head
    // shape): resolve every output field to a fixed index on one side of
    // the probe pair up front, then copy fields by position — no combined
    // tuple, no label lookups, no canonicalizing sort.
    let pure: Option<Vec<(Sym, PairSrc)>> = if matches!(pred, Pred::True) {
        let mut lsorted = table.left_cols.clone();
        lsorted.sort();
        let mut rsorted: Vec<Sym> = table
            .shared
            .iter()
            .chain(table.right_only.iter())
            .copied()
            .collect();
        rsorted.sort();
        let tpl: Option<Vec<(Sym, PairSrc)>> = cols
            .iter()
            .map(|(c, s)| match s {
                Scalar::Col(src) => lsorted
                    .binary_search(src)
                    .ok()
                    .map(PairSrc::Left)
                    .or_else(|| rsorted.binary_search(src).ok().map(PairSrc::Right))
                    .map(|p| (*c, p)),
                _ => None,
            })
            .collect();
        tpl.map(|mut t| {
            t.sort_by_key(|&(c, _)| c);
            t
        })
        .filter(|t| t.windows(2).all(|w| w[0].0 != w[1].0))
    } else {
        None
    };
    // The probe key reads the shared columns off each left tuple; their
    // field indices are fixed too.
    let key_idx: Vec<usize> = {
        let mut lsorted = table.left_cols.clone();
        lsorted.sort();
        table
            .shared
            .iter()
            .map(|c| lsorted.binary_search(c).expect("shared ⊆ left cols"))
            .collect()
    };
    let mut key: Vec<Value> = Vec::with_capacity(key_idx.len());
    for lt in l.iter() {
        probes += 1;
        let lf = lt.as_tuple().expect("relation rows are tuples");
        key.clear();
        key.extend(key_idx.iter().map(|&i| lf[i].1.clone()));
        let Some(matches) = table.rows.get(&key) else {
            continue;
        };
        if let Some(tpl) = &pure {
            for rt in matches {
                pairs += 1;
                let rf = rt.as_tuple().expect("relation rows are tuples");
                out.insert(Value::Tuple(
                    tpl.iter()
                        .map(|(c, p)| match p {
                            PairSrc::Left(i) => (*c, lf[*i].1.clone()),
                            PairSrc::Right(i) => (*c, rf[*i].1.clone()),
                        })
                        .collect(),
                ));
            }
        } else {
            for rt in matches {
                pairs += 1;
                let mut fields = lf.to_vec();
                for c in &table.right_only {
                    fields.push((*c, rt.field(*c).expect("column").clone()));
                }
                let combined = Value::tuple(fields);
                if eval_pred(pred, &combined)? {
                    out.insert(emit_tuple(cols, &combined)?);
                }
            }
        }
    }
    Ok((out, probes, pairs))
}

fn build_key_table(l: &Relation, r: &Relation) -> KeyTable {
    let shared: Vec<Sym> = l
        .cols()
        .iter()
        .filter(|c| r.has_col(**c))
        .copied()
        .collect();
    let keys: FxHashSet<Vec<Value>> = r.iter().map(|t| join_key(t, &shared)).collect();
    KeyTable {
        left_cols: l.cols().to_vec(),
        shared,
        keys,
        right_empty: r.is_empty(),
    }
}

fn probe_key_table(table: &KeyTable, l: &Relation, keep_matches: bool) -> (Relation, u64) {
    let mut out = Relation::new(table.left_cols.clone());
    let mut probes = 0u64;
    for t in l.iter() {
        probes += 1;
        // With no shared columns the right side acts as an existence test on
        // its emptiness.
        let matched = if table.shared.is_empty() {
            !table.right_empty
        } else {
            table.keys.contains(&join_key(t, &table.shared))
        };
        if matched == keep_matches {
            out.insert(t.clone());
        }
    }
    (out, probes)
}

fn check_same_cols(l: &Relation, r: &Relation) -> Result<(), AlgError> {
    let mut lc: Vec<Sym> = l.cols().to_vec();
    let mut rc: Vec<Sym> = r.cols().to_vec();
    lc.sort();
    rc.sort();
    if lc != rc {
        return Err(AlgError::SchemaMismatch {
            left: l.cols().to_vec(),
            right: r.cols().to_vec(),
        });
    }
    Ok(())
}

/// Evaluate a scalar against a tuple.
pub fn eval_scalar(s: &Scalar, tuple: &Value) -> Result<Value, AlgError> {
    match s {
        Scalar::Col(c) => tuple.field(*c).cloned().ok_or(AlgError::UnknownColumn {
            rel: tuple.to_string(),
            col: *c,
        }),
        Scalar::Const(v) => Ok(v.clone()),
        Scalar::Add(a, b) => int_op(a, b, tuple, |x, y| x.checked_add(y)),
        Scalar::Sub(a, b) => int_op(a, b, tuple, |x, y| x.checked_sub(y)),
        Scalar::Mul(a, b) => int_op(a, b, tuple, |x, y| x.checked_mul(y)),
        Scalar::Div(a, b) => int_op(a, b, tuple, |x, y| x.checked_div(y)),
        Scalar::Tuple(fs) => {
            let mut fields = Vec::new();
            for (l, e) in fs {
                fields.push((*l, eval_scalar(e, tuple)?));
            }
            Ok(Value::tuple(fields))
        }
        Scalar::Field(e, l) => {
            let v = eval_scalar(e, tuple)?;
            v.field(*l)
                .cloned()
                .ok_or_else(|| AlgError::BadValue(format!("no field `{l}` in {v}")))
        }
    }
}

fn int_op(
    a: &Scalar,
    b: &Scalar,
    tuple: &Value,
    f: impl Fn(i64, i64) -> Option<i64>,
) -> Result<Value, AlgError> {
    let (x, y) = (eval_scalar(a, tuple)?, eval_scalar(b, tuple)?);
    match (x.as_int(), y.as_int()) {
        (Some(x), Some(y)) => f(x, y)
            .map(Value::Int)
            .ok_or_else(|| AlgError::BadValue("integer overflow or division by zero".into())),
        _ => Err(AlgError::BadValue(format!(
            "arithmetic on non-integers: {x}, {y}"
        ))),
    }
}

/// Evaluate a predicate against a tuple.
pub fn eval_pred(p: &Pred, tuple: &Value) -> Result<bool, AlgError> {
    match p {
        Pred::True => Ok(true),
        Pred::Cmp(op, a, b) => {
            let (x, y) = (eval_scalar(a, tuple)?, eval_scalar(b, tuple)?);
            Ok(match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            })
        }
        Pred::In(e, coll) => {
            let (x, c) = (eval_scalar(e, tuple)?, eval_scalar(coll, tuple)?);
            c.contains(&x)
                .ok_or_else(|| AlgError::BadValue(format!("`in` on non-collection {c}")))
        }
        Pred::And(a, b) => Ok(eval_pred(a, tuple)? && eval_pred(b, tuple)?),
        Pred::Or(a, b) => Ok(eval_pred(a, tuple)? || eval_pred(b, tuple)?),
        Pred::Not(i) => Ok(!eval_pred(i, tuple)?),
    }
}

fn apply_agg(agg: AggFun, vals: &[Value]) -> Result<Value, AlgError> {
    let ints = || -> Result<Vec<i64>, AlgError> {
        vals.iter()
            .map(|v| {
                v.as_int()
                    .ok_or_else(|| AlgError::BadValue(format!("aggregate on non-integer {v}")))
            })
            .collect()
    };
    Ok(match agg {
        AggFun::Count => Value::Int(vals.len() as i64),
        AggFun::Sum => Value::Int(ints()?.iter().sum()),
        AggFun::Min => Value::Int(
            ints()?
                .into_iter()
                .min()
                .ok_or_else(|| AlgError::BadValue("min of empty group".into()))?,
        ),
        AggFun::Max => Value::Int(
            ints()?
                .into_iter()
                .max()
                .ok_or_else(|| AlgError::BadValue("max of empty group".into()))?,
        ),
        AggFun::Avg => {
            let xs = ints()?;
            if xs.is_empty() {
                return Err(AlgError::BadValue("avg of empty group".into()));
            }
            Value::Int(xs.iter().sum::<i64>() / xs.len() as i64)
        }
        AggFun::CollectSet => Value::set(vals.iter().cloned()),
        AggFun::CollectMultiset => Value::multiset(vals.iter().cloned()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(a: i64, b: i64) -> Value {
        Value::tuple([("src", Value::Int(a)), ("dst", Value::Int(b))])
    }

    fn edges(pairs: &[(i64, i64)]) -> Relation {
        Relation::from_rows(["src", "dst"], pairs.iter().map(|&(a, b)| edge(a, b)))
    }

    fn env_with(name: &str, rel: Relation) -> Env {
        let mut env = Env::new();
        env.bind(name, rel);
        env
    }

    #[test]
    fn select_and_project() {
        let env = env_with("e", edges(&[(1, 2), (2, 3), (3, 1)]));
        let expr = AlgExpr::Rel(Sym::new("e"))
            .select(Pred::Cmp(
                CmpOp::Gt,
                Scalar::col("src"),
                Scalar::Const(Value::Int(1)),
            ))
            .project(["dst"]);
        let r = eval(&expr, &env).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Value::tuple([("dst", Value::Int(3))])));
        assert!(r.contains(&Value::tuple([("dst", Value::Int(1))])));
    }

    #[test]
    fn natural_join_composes_edges() {
        let env = env_with("e", edges(&[(1, 2), (2, 3)]));
        // e(src, dst) ⋈ e(dst → src', …) — rename to share the middle node.
        let left = AlgExpr::Rel(Sym::new("e")).rename("dst", "mid");
        let right = AlgExpr::Rel(Sym::new("e"))
            .rename("src", "mid")
            .rename("dst", "far");
        let joined = left.join(right).project(["src", "far"]);
        let r = eval(&joined, &env).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Value::tuple([
            ("src", Value::Int(1)),
            ("far", Value::Int(3))
        ])));
    }

    #[test]
    fn union_diff_intersect() {
        let env = {
            let mut e = Env::new();
            e.bind("a", edges(&[(1, 1), (2, 2)]));
            e.bind("b", edges(&[(2, 2), (3, 3)]));
            e
        };
        let u = eval(
            &AlgExpr::Rel(Sym::new("a")).union(AlgExpr::Rel(Sym::new("b"))),
            &env,
        )
        .unwrap();
        assert_eq!(u.len(), 3);
        let d = eval(
            &AlgExpr::Diff {
                left: Box::new(AlgExpr::Rel(Sym::new("a"))),
                right: Box::new(AlgExpr::Rel(Sym::new("b"))),
            },
            &env,
        )
        .unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.contains(&edge(1, 1)));
        let i = eval(
            &AlgExpr::Intersect {
                left: Box::new(AlgExpr::Rel(Sym::new("a"))),
                right: Box::new(AlgExpr::Rel(Sym::new("b"))),
            },
            &env,
        )
        .unwrap();
        assert_eq!(i.len(), 1);
        assert!(i.contains(&edge(2, 2)));
    }

    #[test]
    fn union_requires_same_columns() {
        let mut env = Env::new();
        env.bind("a", edges(&[(1, 1)]));
        env.bind(
            "b",
            Relation::from_rows(["x"], [Value::tuple([("x", Value::Int(1))])]),
        );
        let err = eval(
            &AlgExpr::Rel(Sym::new("a")).union(AlgExpr::Rel(Sym::new("b"))),
            &env,
        )
        .unwrap_err();
        assert!(matches!(err, AlgError::SchemaMismatch { .. }));
    }

    #[test]
    fn extend_computes_columns() {
        let env = env_with("e", edges(&[(1, 2)]));
        let expr = AlgExpr::Extend {
            input: Box::new(AlgExpr::Rel(Sym::new("e"))),
            col: Sym::new("sum"),
            value: Scalar::Add(Box::new(Scalar::col("src")), Box::new(Scalar::col("dst"))),
        };
        let r = eval(&expr, &env).unwrap();
        let t = r.iter().next().unwrap();
        assert_eq!(t.field(Sym::new("sum")), Some(&Value::Int(3)));
    }

    #[test]
    fn nest_groups_into_sets_and_unnest_inverts() {
        let env = env_with("e", edges(&[(1, 2), (1, 3), (2, 4)]));
        let nested = AlgExpr::Nest {
            input: Box::new(AlgExpr::Rel(Sym::new("e"))),
            cols: vec![Sym::new("dst")],
            into: Sym::new("dsts"),
        };
        let n = eval(&nested, &env).unwrap();
        assert_eq!(n.len(), 2);
        assert!(n.contains(&Value::tuple([
            ("src", Value::Int(1)),
            ("dsts", Value::set([Value::Int(2), Value::Int(3)]))
        ])));
        // Unnest back.
        let un = AlgExpr::Unnest {
            input: Box::new(nested),
            col: Sym::new("dsts"),
        };
        let u = eval(&un, &env).unwrap();
        assert_eq!(u.len(), 3);
        assert!(u.contains(&Value::tuple([
            ("src", Value::Int(1)),
            ("dsts", Value::Int(3))
        ])));
    }

    #[test]
    fn aggregate_count_and_sum() {
        let env = env_with("e", edges(&[(1, 2), (1, 3), (2, 4)]));
        let expr = AlgExpr::Aggregate {
            input: Box::new(AlgExpr::Rel(Sym::new("e"))),
            group: vec![Sym::new("src")],
            agg: AggFun::Sum,
            on: Sym::new("dst"),
            into: Sym::new("total"),
        };
        let r = eval(&expr, &env).unwrap();
        assert!(r.contains(&Value::tuple([
            ("src", Value::Int(1)),
            ("total", Value::Int(5))
        ])));
        assert!(r.contains(&Value::tuple([
            ("src", Value::Int(2)),
            ("total", Value::Int(4))
        ])));
    }

    /// Transitive closure over a chain, in both fixpoint modes; results must
    /// agree (the E1 experiment measures their speed difference).
    #[test]
    fn fixpoint_naive_and_delta_agree_on_closure() {
        let chain: Vec<(i64, i64)> = (0..30).map(|i| (i, i + 1)).collect();
        let env = env_with("e", edges(&chain));
        let tc = Sym::new("tc");
        let step = AlgExpr::Rel(tc)
            .rename("dst", "mid")
            .join(AlgExpr::Rel(Sym::new("e")).rename("src", "mid"))
            .project(["src", "dst"]);
        let mk = |mode| AlgExpr::Fixpoint {
            rec: tc,
            base: Box::new(AlgExpr::Rel(Sym::new("e"))),
            step: Box::new(step.clone()),
            mode,
        };
        let naive = eval(&mk(FixpointMode::Naive), &env).unwrap();
        let delta = eval(&mk(FixpointMode::Delta), &env).unwrap();
        // Closure of a 31-node chain: 31*30/2 pairs.
        assert_eq!(naive.len(), 31 * 30 / 2);
        assert!(naive.set_eq(&delta));
    }

    #[test]
    fn nonlinear_fixpoint_falls_back_to_naive_in_delta_mode() {
        // tc ⋈ tc — a non-linear step; Delta mode must still be correct.
        let env = env_with("e", edges(&[(1, 2), (2, 3), (3, 4)]));
        let tc = Sym::new("tc");
        let step = AlgExpr::Rel(tc)
            .rename("dst", "mid")
            .join(AlgExpr::Rel(tc).rename("src", "mid"))
            .project(["src", "dst"]);
        let fx = AlgExpr::Fixpoint {
            rec: tc,
            base: Box::new(AlgExpr::Rel(Sym::new("e"))),
            step: Box::new(step),
            mode: FixpointMode::Delta,
        };
        let r = eval(&fx, &env).unwrap();
        assert_eq!(r.len(), 6); // closure of the 4-chain
    }

    #[test]
    fn semijoin_and_antijoin_partition_the_left() {
        let mut env = Env::new();
        env.bind("l", edges(&[(1, 10), (2, 20), (3, 30)]));
        // Right side shares only `src`.
        let right = Relation::from_rows(
            ["src"],
            [
                Value::tuple([("src", Value::Int(1))]),
                Value::tuple([("src", Value::Int(3))]),
            ],
        );
        env.bind("r", right);
        let semi = eval(
            &AlgExpr::SemiJoin {
                left: Box::new(AlgExpr::Rel(Sym::new("l"))),
                right: Box::new(AlgExpr::Rel(Sym::new("r"))),
            },
            &env,
        )
        .unwrap();
        let anti = eval(
            &AlgExpr::AntiJoin {
                left: Box::new(AlgExpr::Rel(Sym::new("l"))),
                right: Box::new(AlgExpr::Rel(Sym::new("r"))),
            },
            &env,
        )
        .unwrap();
        assert_eq!(semi.len(), 2);
        assert_eq!(anti.len(), 1);
        assert!(anti.contains(&edge(2, 20)));
        // Semi ∪ anti = left.
        let mut both = semi.clone();
        both.extend_from(&anti);
        assert!(both.set_eq(env.get(Sym::new("l")).unwrap()));
    }

    #[test]
    fn antijoin_with_no_shared_columns_tests_emptiness() {
        let mut env = Env::new();
        env.bind("l", edges(&[(1, 10)]));
        env.bind("empty", Relation::new(["z"]));
        let anti = eval(
            &AlgExpr::AntiJoin {
                left: Box::new(AlgExpr::Rel(Sym::new("l"))),
                right: Box::new(AlgExpr::Rel(Sym::new("empty"))),
            },
            &env,
        )
        .unwrap();
        assert_eq!(anti.len(), 1); // right empty → nothing matches → keep all
        env.bind(
            "nonempty",
            Relation::from_rows(["z"], [Value::tuple([("z", Value::Int(0))])]),
        );
        let anti2 = eval(
            &AlgExpr::AntiJoin {
                left: Box::new(AlgExpr::Rel(Sym::new("l"))),
                right: Box::new(AlgExpr::Rel(Sym::new("nonempty"))),
            },
            &env,
        )
        .unwrap();
        assert_eq!(anti2.len(), 0);
    }

    #[test]
    fn product_rejects_overlap() {
        let env = env_with("e", edges(&[(1, 2)]));
        let err = eval(
            &AlgExpr::Product {
                left: Box::new(AlgExpr::Rel(Sym::new("e"))),
                right: Box::new(AlgExpr::Rel(Sym::new("e"))),
            },
            &env,
        )
        .unwrap_err();
        assert!(matches!(err, AlgError::OverlappingColumns(_)));
    }

    #[test]
    fn pred_in_tests_collection_membership() {
        let rel = Relation::from_rows(
            ["x", "s"],
            [Value::tuple([
                ("x", Value::Int(1)),
                ("s", Value::set([Value::Int(1), Value::Int(2)])),
            ])],
        );
        let env = env_with("r", rel);
        let expr = AlgExpr::Rel(Sym::new("r")).select(Pred::In(Scalar::col("x"), Scalar::col("s")));
        assert_eq!(eval(&expr, &env).unwrap().len(), 1);
    }

    #[test]
    fn unknown_relation_and_column_errors() {
        let env = Env::new();
        assert!(matches!(
            eval(&AlgExpr::Rel(Sym::new("ghost")), &env),
            Err(AlgError::UnknownRelation(_))
        ));
        let env = env_with("e", edges(&[(1, 2)]));
        assert!(matches!(
            eval(&AlgExpr::Rel(Sym::new("e")).project(["zzz"]), &env),
            Err(AlgError::UnknownColumn { .. })
        ));
    }

    /// The fixpoint's join against the stable edge relation must build its
    /// hash table once for the whole fixpoint, not once per round.
    #[test]
    fn join_table_is_built_once_across_fixpoint_rounds() {
        let chain: Vec<(i64, i64)> = (0..20).map(|i| (i, i + 1)).collect();
        let env = env_with("e", edges(&chain));
        let tc = Sym::new("tc");
        let step = AlgExpr::Rel(tc)
            .rename("dst", "mid")
            .join(AlgExpr::Rel(Sym::new("e")).rename("src", "mid"))
            .project(["src", "dst"]);
        let fx = AlgExpr::Fixpoint {
            rec: tc,
            base: Box::new(AlgExpr::Rel(Sym::new("e"))),
            step: Box::new(step),
            mode: FixpointMode::Delta,
        };
        let mut session = Evaluator::new(&env);
        let r = session.eval(&fx).unwrap();
        assert_eq!(r.len(), 21 * 20 / 2);
        let stats = session.stats();
        // A 21-node chain closes in 20 delta rounds (plus the final empty
        // delta short-circuit); the right side of the join is the stable
        // renamed edge relation, so exactly one hash build happens.
        assert_eq!(stats.hash_builds, 1);
        assert_eq!(stats.rounds, 20);
        assert!(stats.probes > stats.rounds);
    }

    /// Volatile-free sub-expressions are evaluated once per session even when
    /// referenced repeatedly across fixpoint rounds.
    #[test]
    fn stable_subexpressions_are_memoized_across_rounds() {
        let env = env_with("e", edges(&[(1, 2), (2, 3), (3, 4), (4, 5)]));
        let tc = Sym::new("tc");
        // The filtered edge set is volatile-free; the union forces it to be
        // (re-)consulted every round.
        let filtered = AlgExpr::Rel(Sym::new("e")).select(Pred::Cmp(
            CmpOp::Gt,
            Scalar::col("src"),
            Scalar::Const(Value::Int(0)),
        ));
        let step = AlgExpr::Rel(tc)
            .rename("dst", "mid")
            .join(AlgExpr::Rel(Sym::new("e")).rename("src", "mid"))
            .project(["src", "dst"])
            .union(filtered);
        let fx = AlgExpr::Fixpoint {
            rec: tc,
            base: Box::new(AlgExpr::Rel(Sym::new("e"))),
            step: Box::new(step),
            mode: FixpointMode::Naive,
        };
        let mut session = Evaluator::new(&env);
        let r = session.eval(&fx).unwrap();
        assert_eq!(r.len(), 5 * 4 / 2);
        let stats = session.stats();
        assert!(stats.rounds >= 2);
        // The select node is computed once; every later round hits the memo.
        assert!(stats.memo_hits >= stats.rounds - 1);
    }

    /// Rebinding through [`Evaluator::bind`] marks the name volatile, so
    /// results reflect the latest binding rather than a stale cache.
    #[test]
    fn bound_names_are_volatile_and_never_stale() {
        let env = Env::new();
        let mut session = Evaluator::new(&env);
        let expr = AlgExpr::Rel(Sym::new("d")).select(Pred::True);
        session.bind("d", edges(&[(1, 2)]));
        assert_eq!(session.eval(&expr).unwrap().len(), 1);
        session.bind("d", edges(&[(1, 2), (3, 4)]));
        assert_eq!(session.eval(&expr).unwrap().len(), 2);
    }

    /// Per-node profiling attributes hash builds, probes and row counts to
    /// the operator nodes that incurred them, without disturbing the
    /// session-level [`EvalStats`].
    #[test]
    fn profiling_attributes_work_to_operator_nodes() {
        let chain: Vec<(i64, i64)> = (0..20).map(|i| (i, i + 1)).collect();
        let env = env_with("e", edges(&chain));
        let tc = Sym::new("tc");
        let renamed_delta = AlgExpr::Rel(tc).rename("dst", "mid");
        let renamed_edge = AlgExpr::Rel(Sym::new("e")).rename("src", "mid");
        let step = renamed_delta.join(renamed_edge).project(["src", "dst"]);
        let fx = AlgExpr::Fixpoint {
            rec: tc,
            base: Box::new(AlgExpr::Rel(Sym::new("e"))),
            step: Box::new(step),
            mode: FixpointMode::Delta,
        };
        let mut session = Evaluator::new(&env);
        session.enable_profiling();
        let r = session.eval(&fx).unwrap();
        assert_eq!(r.len(), 21 * 20 / 2);
        // Session-level counters are untouched by profiling.
        assert_eq!(session.stats().hash_builds, 1);
        assert_eq!(session.stats().rounds, 20);

        let (join, project) = match &fx {
            AlgExpr::Fixpoint { step, .. } => match step.as_ref() {
                AlgExpr::Project { input, .. } => (input.as_ref(), step.as_ref()),
                other => panic!("unexpected step {other:?}"),
            },
            other => panic!("unexpected root {other:?}"),
        };
        let join_stats = session.op_stats_for(join);
        // The single hash build and all probes land on the join node.
        assert_eq!(join_stats.hash_builds, 1);
        assert_eq!(join_stats.probes, session.stats().probes);
        assert_eq!(join_stats.evals, 20);
        let project_stats = session.op_stats_for(project);
        assert_eq!(project_stats.evals, 20);
        // The projection consumes exactly what the join produced.
        assert_eq!(project_stats.rows_in, join_stats.rows_out);
        assert!(project_stats.nanos >= join_stats.nanos);
        // An un-profiled session reports zeroed stats for every node.
        let mut cold = Evaluator::new(&env);
        cold.eval(&fx).unwrap();
        assert_eq!(cold.op_stats_for(join), OpStats::default());
    }

    /// Re-registering a plan hands out fresh node ids, so operator stats and
    /// memo entries recorded for a dropped plan can never be served to a new
    /// plan that happens to reuse the same allocation addresses.
    #[test]
    fn reregistering_a_plan_orphans_stale_stats_and_memo() {
        let env = env_with("e", edges(&[(1, 2), (2, 3)]));
        let plan = AlgExpr::Rel(Sym::new("e"))
            .select(Pred::Cmp(
                CmpOp::Gt,
                Scalar::col("src"),
                Scalar::Const(Value::Int(1)),
            ))
            .project(["dst"]);
        let mut session = Evaluator::new(&env);
        session.enable_profiling();
        session.register_plan(&plan);
        let first_id = session.node_id_of(&plan).expect("registered");
        session.eval(&plan).unwrap();
        session.eval(&plan).unwrap();
        let warm = session.op_stats_for(&plan);
        assert_eq!(warm.evals, 2);
        assert_eq!(warm.memo_hits, 1);

        // Simulate a recompile whose fresh plan lands on the same addresses:
        // re-register the very same nodes. Ids must change and every cache
        // keyed by the old ids must be unreachable.
        session.register_plan(&plan);
        let second_id = session.node_id_of(&plan).expect("registered");
        assert_ne!(first_id, second_id);
        assert_eq!(session.op_stats_for(&plan), OpStats::default());
        let memo_hits_before = session.stats().memo_hits;
        session.eval(&plan).unwrap();
        // Recomputed, not answered from the orphaned memo entry.
        assert_eq!(session.stats().memo_hits, memo_hits_before);
        assert_eq!(session.op_stats_for(&plan).evals, 1);
    }

    /// The fused emit-over-join path conserves rows across the operator
    /// boundary — the join's `rows_out` is exactly the emit's `rows_in` — and
    /// the emit's inclusive time covers the join's, so rendered self-times
    /// can never go negative or double-count.
    #[test]
    fn emit_over_join_profiles_conserve_rows() {
        let chain: Vec<(i64, i64)> = (0..20).map(|i| (i, i + 1)).collect();
        let env = env_with("e", edges(&chain));
        let tc = Sym::new("tc");
        let join = AlgExpr::Rel(tc)
            .rename("dst", "mid")
            .join(AlgExpr::Rel(Sym::new("e")).rename("src", "mid"));
        let step = AlgExpr::Emit {
            input: Box::new(join),
            pred: Pred::True,
            cols: vec![
                (Sym::new("src"), Scalar::col("src")),
                (Sym::new("dst"), Scalar::col("dst")),
            ],
        };
        let fx = AlgExpr::Fixpoint {
            rec: tc,
            base: Box::new(AlgExpr::Rel(Sym::new("e"))),
            step: Box::new(step),
            mode: FixpointMode::Delta,
        };
        let mut session = Evaluator::new(&env);
        session.enable_profiling();
        let r = session.eval(&fx).unwrap();
        assert_eq!(r.len(), 21 * 20 / 2);
        // The stable right side is still built exactly once and all probes
        // go through the cached table, same as the unfused join.
        assert_eq!(session.stats().hash_builds, 1);

        let (emit, join) = match &fx {
            AlgExpr::Fixpoint { step, .. } => match step.as_ref() {
                e @ AlgExpr::Emit { input, .. } => (e, input.as_ref()),
                other => panic!("unexpected step {other:?}"),
            },
            other => panic!("unexpected root {other:?}"),
        };
        let emit_stats = session.op_stats_for(emit);
        let join_stats = session.op_stats_for(join);
        // The join is credited once per round even though the emit drives
        // its probe directly.
        assert_eq!(join_stats.evals, 20);
        assert_eq!(join_stats.hash_builds, 1);
        assert!(join_stats.rows_out > 0);
        // Row conservation: every join pair flows into the emit, nothing is
        // double-counted or lost.
        assert_eq!(emit_stats.rows_in, join_stats.rows_out);
        // Inclusive times nest, so self = emit − join stays non-negative.
        assert!(emit_stats.nanos >= join_stats.nanos);
    }

    /// A fixpoint whose recursive name shadows an engine-bound volatile name
    /// must restore the outer binding when it exits.
    #[test]
    fn fixpoint_restores_shadowed_outer_binding() {
        let env = env_with("e", edges(&[(1, 2), (2, 3)]));
        let mut session = Evaluator::new(&env);
        session.bind("tc", edges(&[(9, 9)]));
        let tc = Sym::new("tc");
        let step = AlgExpr::Rel(tc)
            .rename("dst", "mid")
            .join(AlgExpr::Rel(Sym::new("e")).rename("src", "mid"))
            .project(["src", "dst"]);
        let fx = AlgExpr::Fixpoint {
            rec: tc,
            base: Box::new(AlgExpr::Rel(Sym::new("e"))),
            step: Box::new(step),
            mode: FixpointMode::Delta,
        };
        let r = session.eval(&fx).unwrap();
        assert_eq!(r.len(), 3);
        // The outer binding of `tc` is intact after the fixpoint.
        let outer = AlgExpr::Rel(tc).select(Pred::True);
        let o = session.eval(&outer).unwrap();
        assert_eq!(o.len(), 1);
        assert!(o.contains(&edge(9, 9)));
    }
}
