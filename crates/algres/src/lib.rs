#![warn(missing_docs)]

//! # algres
//!
//! A from-scratch reproduction of the **ALGRES** substrate the LOGRES paper
//! prototypes on: "a main-memory based programming environment supporting an
//! Extended Relational Algebra" over complex (NF²) objects, with extended
//! relational operations and *fixpoint operators* whose semantics can be
//! switched — the paper calls this "the very liberal structure of the
//! closure operation in ALGRES [which] makes it possible to change the
//! semantics of rules very easily" (Section 1).
//!
//! The engine operates on [`Relation`]s: sets of labeled tuples whose fields
//! may be atomic values, oids, nested tuples, sets, multisets or sequences
//! (the [`logres_model::Value`] universe). The algebra ([`AlgExpr`])
//! provides:
//!
//! * classical operators — select, project, rename, product, natural join,
//!   union, difference, intersect;
//! * NF² operators — **nest** (group and collect into a set-valued column)
//!   and **unnest** (flatten a collection-valued column);
//! * **extend** (computed columns) and grouped **aggregate** (count, sum,
//!   min, max, avg, collect);
//! * a **fixpoint** operator with pluggable evaluation
//!   ([`FixpointMode::Naive`] re-evaluates the step from scratch each round;
//!   [`FixpointMode::Delta`] is the semi-naive evaluation that feeds only
//!   newly-derived tuples back into linear steps).
//!
//! `logres-engine` compiles the positive, function-free fragment of the
//! LOGRES rule language to this algebra (mirroring the translation of
//! [Ca90], *Implementing an Object-Oriented Data Model in Relational
//! Algebra*), and benchmark E1 compares interpreted vs. compiled vs.
//! semi-naive closure evaluation.

pub mod error;
pub mod eval;
pub mod expr;
pub mod optimize;
pub mod relation;

pub use error::AlgError;
pub use eval::{eval, Env, EvalStats, Evaluator, OpStats};
pub use expr::{AggFun, AlgExpr, CmpOp, FixpointMode, Pred, Scalar};
pub use optimize::{fuse_reshapes, push_selections, push_selections_with, Catalog};
pub use relation::Relation;
