//! A small algebraic optimizer: selection pushdown and reshape fusion.
//!
//! ALGRES is main-memory, so the dominant cost is intermediate-result size;
//! pushing selections below joins, products and unions is the classical
//! rewrite that attacks it. The E10 benchmark runs the football workload
//! with and without this pass, and the engine's compiled evaluation path
//! runs it over every rule plan.
//!
//! [`fuse_reshapes`] attacks the other main-memory tax: every compiled rule
//! plan tops out in a `Rename* ∘ Project ∘ Extend*/Select*` chain that
//! rebuilds each tuple several times just to reach head layout. The pass
//! collapses such a chain into one [`AlgExpr::Emit`] node, which the
//! evaluator executes as a single filter-and-reshape pass — and, when the
//! chain sits on a `Join`, as part of the join probe itself.

use logres_model::Sym;

use crate::expr::{AlgExpr, Pred, Scalar};

/// A column catalog for named relations: tells the optimizer which columns
/// `Rel(name)` produces, so predicates can sink past relation references.
pub type Catalog<'a> = &'a dyn Fn(Sym) -> Option<Vec<Sym>>;

/// Push selections as close to the leaves as legal, without knowledge of
/// named relations' columns (pushdown stops at `Rel` references).
pub fn push_selections(expr: AlgExpr) -> AlgExpr {
    push_selections_with(expr, &|_| None)
}

/// Push selections with a catalog resolving the columns of named relations.
pub fn push_selections_with(expr: AlgExpr, catalog: Catalog<'_>) -> AlgExpr {
    rewrite(expr, catalog)
}

fn rewrite(expr: AlgExpr, catalog: Catalog<'_>) -> AlgExpr {
    match expr {
        AlgExpr::Select { input, pred } => {
            let input = rewrite(*input, catalog);
            let conjuncts = split_and(pred);
            push_conjuncts(input, conjuncts, catalog)
        }
        AlgExpr::Project { input, cols } => AlgExpr::Project {
            input: Box::new(rewrite(*input, catalog)),
            cols,
        },
        AlgExpr::Rename { input, from, to } => AlgExpr::Rename {
            input: Box::new(rewrite(*input, catalog)),
            from,
            to,
        },
        AlgExpr::Product { left, right } => AlgExpr::Product {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
        },
        AlgExpr::Join { left, right } => AlgExpr::Join {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
        },
        AlgExpr::Union { left, right } => AlgExpr::Union {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
        },
        AlgExpr::Diff { left, right } => AlgExpr::Diff {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
        },
        AlgExpr::Intersect { left, right } => AlgExpr::Intersect {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
        },
        AlgExpr::SemiJoin { left, right } => AlgExpr::SemiJoin {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
        },
        AlgExpr::AntiJoin { left, right } => AlgExpr::AntiJoin {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
        },
        AlgExpr::Extend { input, col, value } => AlgExpr::Extend {
            input: Box::new(rewrite(*input, catalog)),
            col,
            value,
        },
        AlgExpr::Emit { input, pred, cols } => AlgExpr::Emit {
            input: Box::new(rewrite(*input, catalog)),
            pred,
            cols,
        },
        AlgExpr::Nest { input, cols, into } => AlgExpr::Nest {
            input: Box::new(rewrite(*input, catalog)),
            cols,
            into,
        },
        AlgExpr::Unnest { input, col } => AlgExpr::Unnest {
            input: Box::new(rewrite(*input, catalog)),
            col,
        },
        AlgExpr::Aggregate {
            input,
            group,
            agg,
            on,
            into,
        } => AlgExpr::Aggregate {
            input: Box::new(rewrite(*input, catalog)),
            group,
            agg,
            on,
            into,
        },
        AlgExpr::Fixpoint {
            rec,
            base,
            step,
            mode,
        } => {
            let base = rewrite(*base, catalog);
            // Inside the step, `rec` names the accumulating relation — whose
            // columns are the base's — not whatever the outer catalog may
            // associate with the same name. Shadow it to avoid capturing an
            // unrelated relation's columns in coverage decisions.
            let rec_cols = out_cols(&base, catalog);
            let step_catalog = move |name: Sym| {
                if name == rec {
                    rec_cols.clone()
                } else {
                    catalog(name)
                }
            };
            let step = rewrite(*step, &step_catalog);
            AlgExpr::Fixpoint {
                rec,
                base: Box::new(base),
                step: Box::new(step),
                mode,
            }
        }
        leaf @ (AlgExpr::Rel(_) | AlgExpr::Const(_)) => leaf,
    }
}

fn split_and(p: Pred) -> Vec<Pred> {
    match p {
        Pred::And(a, b) => {
            let mut out = split_and(*a);
            out.extend(split_and(*b));
            out
        }
        Pred::True => Vec::new(),
        other => vec![other],
    }
}

/// Columns produced by an expression, when statically known. `None` means
/// "unknown" — pushdown stops there. Named relations resolve through the
/// catalog.
fn out_cols(expr: &AlgExpr, catalog: Catalog<'_>) -> Option<Vec<Sym>> {
    match expr {
        AlgExpr::Rel(name) => catalog(*name),
        AlgExpr::Const(r) => Some(r.cols().to_vec()),
        AlgExpr::Project { cols, .. } => Some(cols.clone()),
        AlgExpr::Rename { input, from, to } => {
            let mut cols = out_cols(input, catalog)?;
            for c in &mut cols {
                if c == from {
                    *c = *to;
                }
            }
            Some(cols)
        }
        AlgExpr::Select { input, .. } => out_cols(input, catalog),
        AlgExpr::Product { left, right } => {
            let mut cols = out_cols(left, catalog)?;
            cols.extend(out_cols(right, catalog)?);
            Some(cols)
        }
        AlgExpr::Join { left, right } => {
            let mut cols = out_cols(left, catalog)?;
            for c in out_cols(right, catalog)? {
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
            Some(cols)
        }
        AlgExpr::Union { left, .. }
        | AlgExpr::Diff { left, .. }
        | AlgExpr::Intersect { left, .. }
        | AlgExpr::SemiJoin { left, .. }
        | AlgExpr::AntiJoin { left, .. } => out_cols(left, catalog),
        AlgExpr::Extend { input, col, .. } => {
            let mut cols = out_cols(input, catalog)?;
            cols.push(*col);
            Some(cols)
        }
        AlgExpr::Emit { cols, .. } => Some(cols.iter().map(|(c, _)| *c).collect()),
        _ => None,
    }
}

fn push_conjuncts(input: AlgExpr, conjuncts: Vec<Pred>, catalog: Catalog<'_>) -> AlgExpr {
    let mut expr = input;
    let mut remaining = Vec::new();
    for p in conjuncts {
        expr = match try_push(expr, &p, catalog) {
            Ok(e) => e,
            Err(e) => {
                remaining.push(p);
                e
            }
        };
    }
    if remaining.is_empty() {
        expr
    } else {
        AlgExpr::Select {
            input: Box::new(expr),
            pred: Pred::all(remaining),
        }
    }
}

/// Collapse `Rename* ∘ Project ∘ (Project | Extend | Select)*` chains into a
/// single [`AlgExpr::Emit`] node, recursing everywhere else.
///
/// Soundness rules, checked per chain:
/// - the chain root is `Rename*` over a `Project`; every rename must be
///   proper over the project's columns (`from` present, `to` fresh) and the
///   final output names distinct, otherwise the chain is left alone;
/// - below the project, a `Rename` stops the chain (its propriety cannot be
///   checked without the scan schema);
/// - a mid-chain `Project` is skipped only when every column the mapping and
///   predicate reference survives it; its early deduplication is immaterial
///   because the output relation deduplicates on insert and first-occurrence
///   order is preserved;
/// - an `Extend` folds into the mapping by substitution only while no
///   `Select` has been absorbed yet, so absorbing it cannot move the
///   computed column's evaluation across a filter that ran *after* it in
///   the original chain;
/// - absorbed `Select` predicates are prepended to the accumulated
///   predicate, so conjuncts still evaluate bottom-up in the original
///   order.
///
/// The fused plan may fail *less* often than the original on ill-formed
/// plans (it only evaluates the scalars it still references, and only on
/// rows that pass the residual predicate); whenever the original evaluates,
/// the fused plan evaluates to the identical relation, in the same
/// insertion order.
pub fn fuse_reshapes(expr: AlgExpr) -> AlgExpr {
    if let Some(fused) = try_fuse_chain(&expr) {
        return fused;
    }
    fuse_children(expr)
}

/// Try to recognize a reshape chain rooted at `expr`; returns the fused
/// node (with a recursively fused input) when the chain is sound and
/// absorbs at least one stage beyond the project itself.
fn try_fuse_chain(expr: &AlgExpr) -> Option<AlgExpr> {
    // Chain root: renames (outermost first) over a project.
    let mut renames: Vec<(Sym, Sym)> = Vec::new();
    let mut cur = expr;
    while let AlgExpr::Rename { input, from, to } = cur {
        renames.push((*from, *to));
        cur = input;
    }
    let AlgExpr::Project { input, cols } = cur else {
        return None;
    };
    // The renames apply innermost-first to the project's output columns;
    // validate each is proper as it applies.
    let mut names = cols.clone();
    for (from, to) in renames.iter().rev() {
        if !names.contains(from) || names.contains(to) {
            return None;
        }
        for n in &mut names {
            if *n == *from {
                *n = *to;
            }
        }
    }
    let mut distinct = names.clone();
    distinct.sort();
    distinct.dedup();
    if distinct.len() != names.len() {
        return None;
    }
    let mut mapping: Vec<(Sym, Scalar)> = names
        .into_iter()
        .zip(cols.iter().map(|c| Scalar::Col(*c)))
        .collect();

    // Walk below the project, absorbing stages into the mapping/predicate.
    let mut pred = Pred::True;
    let mut saw_select = false;
    let mut absorbed = 0usize;
    let mut cur = input.as_ref();
    loop {
        match cur {
            AlgExpr::Project { input, cols: inner } => {
                let needed = referenced_cols(&mapping, &pred);
                if !needed.iter().all(|c| inner.contains(c)) {
                    break;
                }
                cur = input;
                absorbed += 1;
            }
            AlgExpr::Extend { input, col, value } if !saw_select => {
                for (_, s) in &mut mapping {
                    *s = replace_col_scalar(s, *col, value);
                }
                pred = replace_col_pred(&pred, *col, value);
                cur = input;
                absorbed += 1;
            }
            AlgExpr::Select { input, pred: p } => {
                pred = match pred {
                    Pred::True => p.clone(),
                    acc => Pred::And(Box::new(p.clone()), Box::new(acc)),
                };
                saw_select = true;
                cur = input;
                absorbed += 1;
            }
            _ => break,
        }
    }
    if renames.is_empty() && absorbed == 0 {
        return None;
    }
    Some(AlgExpr::Emit {
        input: Box::new(fuse_reshapes(cur.clone())),
        pred,
        cols: mapping,
    })
}

/// All columns the emit mapping and residual predicate read.
fn referenced_cols(mapping: &[(Sym, Scalar)], pred: &Pred) -> Vec<Sym> {
    let mut out = pred.cols();
    for (_, s) in mapping {
        out.extend(s.cols());
    }
    out
}

/// Rebuild a node with recursively fused children.
fn fuse_children(expr: AlgExpr) -> AlgExpr {
    match expr {
        leaf @ (AlgExpr::Rel(_) | AlgExpr::Const(_)) => leaf,
        AlgExpr::Select { input, pred } => AlgExpr::Select {
            input: Box::new(fuse_reshapes(*input)),
            pred,
        },
        AlgExpr::Project { input, cols } => AlgExpr::Project {
            input: Box::new(fuse_reshapes(*input)),
            cols,
        },
        AlgExpr::Rename { input, from, to } => AlgExpr::Rename {
            input: Box::new(fuse_reshapes(*input)),
            from,
            to,
        },
        AlgExpr::Product { left, right } => AlgExpr::Product {
            left: Box::new(fuse_reshapes(*left)),
            right: Box::new(fuse_reshapes(*right)),
        },
        AlgExpr::Join { left, right } => AlgExpr::Join {
            left: Box::new(fuse_reshapes(*left)),
            right: Box::new(fuse_reshapes(*right)),
        },
        AlgExpr::Union { left, right } => AlgExpr::Union {
            left: Box::new(fuse_reshapes(*left)),
            right: Box::new(fuse_reshapes(*right)),
        },
        AlgExpr::Diff { left, right } => AlgExpr::Diff {
            left: Box::new(fuse_reshapes(*left)),
            right: Box::new(fuse_reshapes(*right)),
        },
        AlgExpr::Intersect { left, right } => AlgExpr::Intersect {
            left: Box::new(fuse_reshapes(*left)),
            right: Box::new(fuse_reshapes(*right)),
        },
        AlgExpr::SemiJoin { left, right } => AlgExpr::SemiJoin {
            left: Box::new(fuse_reshapes(*left)),
            right: Box::new(fuse_reshapes(*right)),
        },
        AlgExpr::AntiJoin { left, right } => AlgExpr::AntiJoin {
            left: Box::new(fuse_reshapes(*left)),
            right: Box::new(fuse_reshapes(*right)),
        },
        AlgExpr::Extend { input, col, value } => AlgExpr::Extend {
            input: Box::new(fuse_reshapes(*input)),
            col,
            value,
        },
        AlgExpr::Emit { input, pred, cols } => AlgExpr::Emit {
            input: Box::new(fuse_reshapes(*input)),
            pred,
            cols,
        },
        AlgExpr::Nest { input, cols, into } => AlgExpr::Nest {
            input: Box::new(fuse_reshapes(*input)),
            cols,
            into,
        },
        AlgExpr::Unnest { input, col } => AlgExpr::Unnest {
            input: Box::new(fuse_reshapes(*input)),
            col,
        },
        AlgExpr::Aggregate {
            input,
            group,
            agg,
            on,
            into,
        } => AlgExpr::Aggregate {
            input: Box::new(fuse_reshapes(*input)),
            group,
            agg,
            on,
            into,
        },
        AlgExpr::Fixpoint {
            rec,
            base,
            step,
            mode,
        } => AlgExpr::Fixpoint {
            rec,
            base: Box::new(fuse_reshapes(*base)),
            step: Box::new(fuse_reshapes(*step)),
            mode,
        },
    }
}

/// Replace references to column `col` with the scalar `with` — the
/// substitution that folds an `Extend` away.
fn replace_col_scalar(s: &Scalar, col: Sym, with: &Scalar) -> Scalar {
    match s {
        Scalar::Col(c) if *c == col => with.clone(),
        Scalar::Col(c) => Scalar::Col(*c),
        Scalar::Const(v) => Scalar::Const(v.clone()),
        Scalar::Add(a, b) => Scalar::Add(
            Box::new(replace_col_scalar(a, col, with)),
            Box::new(replace_col_scalar(b, col, with)),
        ),
        Scalar::Sub(a, b) => Scalar::Sub(
            Box::new(replace_col_scalar(a, col, with)),
            Box::new(replace_col_scalar(b, col, with)),
        ),
        Scalar::Mul(a, b) => Scalar::Mul(
            Box::new(replace_col_scalar(a, col, with)),
            Box::new(replace_col_scalar(b, col, with)),
        ),
        Scalar::Div(a, b) => Scalar::Div(
            Box::new(replace_col_scalar(a, col, with)),
            Box::new(replace_col_scalar(b, col, with)),
        ),
        Scalar::Tuple(fs) => Scalar::Tuple(
            fs.iter()
                .map(|(l, e)| (*l, replace_col_scalar(e, col, with)))
                .collect(),
        ),
        Scalar::Field(e, l) => Scalar::Field(Box::new(replace_col_scalar(e, col, with)), *l),
    }
}

/// Replace references to column `col` with the scalar `with` in a predicate.
fn replace_col_pred(p: &Pred, col: Sym, with: &Scalar) -> Pred {
    match p {
        Pred::True => Pred::True,
        Pred::Cmp(op, a, b) => Pred::Cmp(
            *op,
            replace_col_scalar(a, col, with),
            replace_col_scalar(b, col, with),
        ),
        Pred::In(a, b) => Pred::In(
            replace_col_scalar(a, col, with),
            replace_col_scalar(b, col, with),
        ),
        Pred::And(a, b) => Pred::And(
            Box::new(replace_col_pred(a, col, with)),
            Box::new(replace_col_pred(b, col, with)),
        ),
        Pred::Or(a, b) => Pred::Or(
            Box::new(replace_col_pred(a, col, with)),
            Box::new(replace_col_pred(b, col, with)),
        ),
        Pred::Not(i) => Pred::Not(Box::new(replace_col_pred(i, col, with))),
    }
}

/// Replace column references `old` with `new` in a scalar. Field labels of
/// nested values are untouched — only relation columns are renamed.
fn subst_scalar(s: &Scalar, old: Sym, new: Sym) -> Scalar {
    match s {
        Scalar::Col(c) => Scalar::Col(if *c == old { new } else { *c }),
        Scalar::Const(v) => Scalar::Const(v.clone()),
        Scalar::Add(a, b) => Scalar::Add(
            Box::new(subst_scalar(a, old, new)),
            Box::new(subst_scalar(b, old, new)),
        ),
        Scalar::Sub(a, b) => Scalar::Sub(
            Box::new(subst_scalar(a, old, new)),
            Box::new(subst_scalar(b, old, new)),
        ),
        Scalar::Mul(a, b) => Scalar::Mul(
            Box::new(subst_scalar(a, old, new)),
            Box::new(subst_scalar(b, old, new)),
        ),
        Scalar::Div(a, b) => Scalar::Div(
            Box::new(subst_scalar(a, old, new)),
            Box::new(subst_scalar(b, old, new)),
        ),
        Scalar::Tuple(fs) => Scalar::Tuple(
            fs.iter()
                .map(|(l, e)| (*l, subst_scalar(e, old, new)))
                .collect(),
        ),
        Scalar::Field(e, l) => Scalar::Field(Box::new(subst_scalar(e, old, new)), *l),
    }
}

/// Replace column references `old` with `new` in a predicate.
fn subst_pred(p: &Pred, old: Sym, new: Sym) -> Pred {
    match p {
        Pred::True => Pred::True,
        Pred::Cmp(op, a, b) => Pred::Cmp(*op, subst_scalar(a, old, new), subst_scalar(b, old, new)),
        Pred::In(a, b) => Pred::In(subst_scalar(a, old, new), subst_scalar(b, old, new)),
        Pred::And(a, b) => Pred::And(
            Box::new(subst_pred(a, old, new)),
            Box::new(subst_pred(b, old, new)),
        ),
        Pred::Or(a, b) => Pred::Or(
            Box::new(subst_pred(a, old, new)),
            Box::new(subst_pred(b, old, new)),
        ),
        Pred::Not(i) => Pred::Not(Box::new(subst_pred(i, old, new))),
    }
}

/// Try to sink one conjunct one level down; `Ok` means it was absorbed.
fn try_push(expr: AlgExpr, p: &Pred, catalog: Catalog<'_>) -> Result<AlgExpr, AlgExpr> {
    let needs = p.cols();
    let covered = |e: &AlgExpr| -> bool {
        out_cols(e, catalog).is_some_and(|cols| needs.iter().all(|c| cols.contains(c)))
    };
    match expr {
        AlgExpr::Join { left, right } => {
            if covered(&left) {
                Ok(AlgExpr::Join {
                    left: Box::new(push_conjuncts(*left, vec![p.clone()], catalog)),
                    right,
                })
            } else if covered(&right) {
                Ok(AlgExpr::Join {
                    left,
                    right: Box::new(push_conjuncts(*right, vec![p.clone()], catalog)),
                })
            } else {
                Err(AlgExpr::Join { left, right })
            }
        }
        AlgExpr::Product { left, right } => {
            if covered(&left) {
                Ok(AlgExpr::Product {
                    left: Box::new(push_conjuncts(*left, vec![p.clone()], catalog)),
                    right,
                })
            } else if covered(&right) {
                Ok(AlgExpr::Product {
                    left,
                    right: Box::new(push_conjuncts(*right, vec![p.clone()], catalog)),
                })
            } else {
                Err(AlgExpr::Product { left, right })
            }
        }
        // Selection distributes over union/intersect/difference (left side
        // for difference is enough for filtering; both sides stay correct
        // because σ(A − B) = σ(A) − B).
        AlgExpr::Union { left, right } => Ok(AlgExpr::Union {
            left: Box::new(push_conjuncts(*left, vec![p.clone()], catalog)),
            right: Box::new(push_conjuncts(*right, vec![p.clone()], catalog)),
        }),
        AlgExpr::Diff { left, right } => Ok(AlgExpr::Diff {
            left: Box::new(push_conjuncts(*left, vec![p.clone()], catalog)),
            right,
        }),
        AlgExpr::Intersect { left, right } => Ok(AlgExpr::Intersect {
            left: Box::new(push_conjuncts(*left, vec![p.clone()], catalog)),
            right,
        }),
        // Semi/anti-join output the left side unchanged, so a selection over
        // the result filters the left side directly.
        AlgExpr::SemiJoin { left, right } => Ok(AlgExpr::SemiJoin {
            left: Box::new(push_conjuncts(*left, vec![p.clone()], catalog)),
            right,
        }),
        AlgExpr::AntiJoin { left, right } => Ok(AlgExpr::AntiJoin {
            left: Box::new(push_conjuncts(*left, vec![p.clone()], catalog)),
            right,
        }),
        // σ_p(π_cols(E)) = π_cols(σ_p(E)) when p only uses kept columns.
        AlgExpr::Project { input, cols } => {
            if needs.iter().all(|c| cols.contains(c)) {
                Ok(AlgExpr::Project {
                    input: Box::new(push_conjuncts(*input, vec![p.clone()], catalog)),
                    cols,
                })
            } else {
                Err(AlgExpr::Project { input, cols })
            }
        }
        // σ_p(ρ_{from→to}(E)) = ρ_{from→to}(σ_{p[to↦from]}(E)), valid only
        // for a proper rename: the input must have `from` and must not
        // already have `to` (and p must not reference the renamed-away
        // column, which would be ill-formed anyway).
        AlgExpr::Rename { input, from, to } => {
            let proper = from == to
                || out_cols(&input, catalog)
                    .is_some_and(|cols| cols.contains(&from) && !cols.contains(&to));
            if proper && (from == to || !needs.contains(&from)) {
                let q = subst_pred(p, to, from);
                Ok(AlgExpr::Rename {
                    input: Box::new(push_conjuncts(*input, vec![q], catalog)),
                    from,
                    to,
                })
            } else {
                Err(AlgExpr::Rename { input, from, to })
            }
        }
        // A selection not touching the computed column commutes with extend.
        AlgExpr::Extend { input, col, value } => {
            if needs.contains(&col) {
                Err(AlgExpr::Extend { input, col, value })
            } else {
                Ok(AlgExpr::Extend {
                    input: Box::new(push_conjuncts(*input, vec![p.clone()], catalog)),
                    col,
                    value,
                })
            }
        }
        other => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Env};
    use crate::expr::{CmpOp, FixpointMode, Scalar};
    use crate::relation::Relation;
    use logres_model::Value;

    fn edges(pairs: &[(i64, i64)]) -> Relation {
        Relation::from_rows(
            ["src", "dst"],
            pairs
                .iter()
                .map(|&(a, b)| Value::tuple([("src", Value::Int(a)), ("dst", Value::Int(b))])),
        )
    }

    fn sel(col: &str, v: i64) -> Pred {
        Pred::Cmp(CmpOp::Eq, Scalar::col(col), Scalar::Const(Value::Int(v)))
    }

    #[test]
    fn selection_sinks_into_join_side() {
        // σ_{src=1}(A(src,mid) ⋈ B(mid,dst)) → σ on A only.
        let a = AlgExpr::Const(edges(&[(1, 2), (5, 6)])).rename("dst", "mid");
        let b = AlgExpr::Const(edges(&[(2, 3), (6, 7)]))
            .rename("src", "mid")
            .rename("dst", "far");
        let joined = a.join(b).select(sel("src", 1));
        let optimized = push_selections(joined.clone());
        // The top-level node is now the join, not the select.
        assert!(matches!(optimized, AlgExpr::Join { .. }));
        // And the results agree.
        let env = Env::new();
        assert_eq!(
            eval(&joined, &env).unwrap(),
            eval(&optimized, &env).unwrap()
        );
    }

    #[test]
    fn selection_distributes_over_union() {
        let u = AlgExpr::Const(edges(&[(1, 2)]))
            .union(AlgExpr::Const(edges(&[(3, 4)])))
            .select(sel("src", 1));
        let optimized = push_selections(u.clone());
        assert!(matches!(optimized, AlgExpr::Union { .. }));
        let env = Env::new();
        assert_eq!(eval(&u, &env).unwrap(), eval(&optimized, &env).unwrap());
    }

    #[test]
    fn unpushable_selection_is_preserved() {
        // Predicate spanning both join sides cannot sink.
        let a = AlgExpr::Const(edges(&[(1, 2)])).rename("dst", "mid");
        let b = AlgExpr::Const(edges(&[(2, 3)]))
            .rename("src", "mid")
            .rename("dst", "far");
        let joined = a
            .join(b)
            .select(Pred::Cmp(CmpOp::Lt, Scalar::col("src"), Scalar::col("far")));
        let optimized = push_selections(joined.clone());
        assert!(matches!(optimized, AlgExpr::Select { .. }));
        let env = Env::new();
        assert_eq!(
            eval(&joined, &env).unwrap(),
            eval(&optimized, &env).unwrap()
        );
    }

    #[test]
    fn conjunctions_split_and_sink_separately() {
        let a = AlgExpr::Const(edges(&[(1, 2), (9, 2)])).rename("dst", "mid");
        let b = AlgExpr::Const(edges(&[(2, 3), (2, 9)]))
            .rename("src", "mid")
            .rename("dst", "far");
        let p = Pred::And(Box::new(sel("src", 1)), Box::new(sel("far", 3)));
        let joined = a.join(b).select(p);
        let optimized = push_selections(joined.clone());
        assert!(matches!(optimized, AlgExpr::Join { .. }));
        let env = Env::new();
        let r = eval(&optimized, &env).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(eval(&joined, &env).unwrap(), r);
    }

    #[test]
    fn selection_sinks_through_rename_with_substitution() {
        let e = AlgExpr::Const(edges(&[(1, 2), (3, 4)]))
            .rename("dst", "mid")
            .select(sel("mid", 2));
        let optimized = push_selections(e.clone());
        // The rename is now on top; the (substituted) select sank below it.
        assert!(matches!(optimized, AlgExpr::Rename { .. }));
        let env = Env::new();
        assert_eq!(eval(&e, &env).unwrap(), eval(&optimized, &env).unwrap());
    }

    #[test]
    fn selection_does_not_sink_through_rename_when_it_uses_the_old_name() {
        // `src` is renamed away; a predicate on `src` over the output is
        // ill-formed and must not be rewritten into something that evaluates.
        let e = AlgExpr::Const(edges(&[(1, 2)]))
            .rename("src", "origin")
            .select(sel("src", 1));
        let optimized = push_selections(e.clone());
        assert!(matches!(optimized, AlgExpr::Select { .. }));
        let env = Env::new();
        assert!(eval(&e, &env).is_err());
        assert!(eval(&optimized, &env).is_err());
    }

    #[test]
    fn selection_sinks_through_project() {
        let e = AlgExpr::Const(edges(&[(1, 2), (3, 4)]))
            .project(["src"])
            .select(sel("src", 1));
        let optimized = push_selections(e.clone());
        assert!(matches!(optimized, AlgExpr::Project { .. }));
        let env = Env::new();
        assert_eq!(eval(&e, &env).unwrap(), eval(&optimized, &env).unwrap());
    }

    #[test]
    fn selection_sinks_below_extend_and_semijoin() {
        let ext = AlgExpr::Extend {
            input: Box::new(AlgExpr::Const(edges(&[(1, 2), (3, 4)]))),
            col: Sym::new("sum"),
            value: Scalar::Add(Box::new(Scalar::col("src")), Box::new(Scalar::col("dst"))),
        }
        .select(sel("src", 1));
        let optimized = push_selections(ext.clone());
        assert!(matches!(optimized, AlgExpr::Extend { .. }));
        let env = Env::new();
        assert_eq!(eval(&ext, &env).unwrap(), eval(&optimized, &env).unwrap());

        let semi = AlgExpr::SemiJoin {
            left: Box::new(AlgExpr::Const(edges(&[(1, 2), (3, 4)]))),
            right: Box::new(AlgExpr::Const(edges(&[(1, 2)])).project(["src"])),
        }
        .select(sel("dst", 2));
        let optimized = push_selections(semi.clone());
        assert!(matches!(optimized, AlgExpr::SemiJoin { .. }));
        assert_eq!(eval(&semi, &env).unwrap(), eval(&optimized, &env).unwrap());
    }

    /// The catalog must not leak into a fixpoint step for the recursive
    /// name: `rec` inside the step has the base's columns, not whatever an
    /// outer relation of the same name has. With the capture bug, the
    /// selection below sinks onto the recursive reference (whose tuples lack
    /// `k`) and evaluation breaks.
    #[test]
    fn fixpoint_step_shadows_the_catalog_for_the_recursive_name() {
        // Outer catalog: `t` is a one-column relation over `k`.
        let catalog = |name: Sym| {
            if name == Sym::new("t") {
                Some(vec![Sym::new("k")])
            } else {
                None
            }
        };
        let t = Sym::new("t");
        // step: (t ⋈ m).select(k = 1).project(src, dst) where m(dst, k).
        let m = Relation::from_rows(
            ["dst", "k"],
            [
                Value::tuple([("dst", Value::Int(2)), ("k", Value::Int(1))]),
                Value::tuple([("dst", Value::Int(3)), ("k", Value::Int(1))]),
            ],
        );
        let step = AlgExpr::Rel(t)
            .join(AlgExpr::Const(m))
            .select(sel("k", 1))
            .project(["src", "dst"]);
        let fx = AlgExpr::Fixpoint {
            rec: t,
            base: Box::new(AlgExpr::Const(edges(&[(1, 2), (2, 3)]))),
            step: Box::new(step),
            mode: FixpointMode::Naive,
        };
        let optimized = push_selections_with(fx.clone(), &catalog);
        let env = Env::new();
        let orig = eval(&fx, &env).unwrap();
        let opt = eval(&optimized, &env).unwrap();
        assert_eq!(orig, opt);
    }

    #[test]
    fn reshape_chain_fuses_to_a_single_emit() {
        // The per-literal shape the planner emits:
        // Rename(dst→?Y) ∘ Rename(src→?X) ∘ Project[src,dst] ∘ Select ∘ scan.
        let chain = AlgExpr::Const(edges(&[(1, 2), (3, 4)]))
            .select(sel("src", 1))
            .project(["src", "dst"])
            .rename("src", "?X")
            .rename("dst", "?Y");
        let fused = fuse_reshapes(chain.clone());
        let AlgExpr::Emit { input, pred, cols } = &fused else {
            panic!("expected Emit, got {fused:?}");
        };
        assert!(matches!(input.as_ref(), AlgExpr::Const(_)));
        assert!(!matches!(pred, Pred::True));
        assert_eq!(
            cols,
            &vec![
                (Sym::new("?X"), Scalar::col("src")),
                (Sym::new("?Y"), Scalar::col("dst")),
            ]
        );
        let env = Env::new();
        assert_eq!(eval(&chain, &env).unwrap(), eval(&fused, &env).unwrap());
    }

    #[test]
    fn bare_projects_are_left_unfused() {
        // A lone projection absorbs nothing; fusing it would only add an
        // operator, so it stays a Project.
        let p = AlgExpr::Const(edges(&[(1, 2)])).project(["src"]);
        assert!(matches!(fuse_reshapes(p), AlgExpr::Project { .. }));
    }

    #[test]
    fn extend_folds_into_the_emit_mapping() {
        // Project[src, x] ∘ Extend(x := src + 1) ∘ scan: the computed column
        // substitutes into the mapping, so the Extend disappears.
        let ext = AlgExpr::Extend {
            input: Box::new(AlgExpr::Const(edges(&[(1, 2), (5, 6)]))),
            col: Sym::new("x"),
            value: Scalar::Add(
                Box::new(Scalar::col("src")),
                Box::new(Scalar::Const(Value::Int(1))),
            ),
        };
        let chain = ext.project(["src", "x"]).rename("x", "bump");
        let fused = fuse_reshapes(chain.clone());
        let AlgExpr::Emit { input, cols, .. } = &fused else {
            panic!("expected Emit, got {fused:?}");
        };
        assert!(matches!(input.as_ref(), AlgExpr::Const(_)));
        assert_eq!(cols[0], (Sym::new("src"), Scalar::col("src")));
        assert!(matches!(cols[1].1, Scalar::Add(..)));
        let env = Env::new();
        assert_eq!(eval(&chain, &env).unwrap(), eval(&fused, &env).unwrap());
    }

    #[test]
    fn extend_below_an_absorbed_select_is_not_folded() {
        // Project ∘ Select ∘ Extend: folding the Extend would move its
        // evaluation across the filter that originally ran after it, so the
        // walk stops at the Extend and it stays the emit input.
        let ext = AlgExpr::Extend {
            input: Box::new(AlgExpr::Const(edges(&[(1, 2), (3, 4)]))),
            col: Sym::new("x"),
            value: Scalar::Add(
                Box::new(Scalar::col("src")),
                Box::new(Scalar::Const(Value::Int(1))),
            ),
        };
        let chain = ext
            .select(sel("x", 2))
            .project(["src", "dst"])
            .rename("src", "?X");
        let fused = fuse_reshapes(chain.clone());
        let AlgExpr::Emit { input, .. } = &fused else {
            panic!("expected Emit, got {fused:?}");
        };
        assert!(
            matches!(input.as_ref(), AlgExpr::Extend { .. }),
            "Extend below a Select must stay materialized, got {input:?}"
        );
        let env = Env::new();
        assert_eq!(eval(&chain, &env).unwrap(), eval(&fused, &env).unwrap());
    }

    #[test]
    fn rename_below_the_project_stops_the_chain() {
        // The inner Rename's propriety cannot be checked without the scan
        // schema, so the chain absorbs down to it and no further.
        let chain = AlgExpr::Const(edges(&[(1, 2)]))
            .rename("dst", "mid")
            .select(sel("src", 1))
            .project(["src", "mid"]);
        let fused = fuse_reshapes(chain.clone());
        let AlgExpr::Emit { input, .. } = &fused else {
            panic!("expected Emit, got {fused:?}");
        };
        assert!(matches!(input.as_ref(), AlgExpr::Rename { .. }));
        let env = Env::new();
        assert_eq!(eval(&chain, &env).unwrap(), eval(&fused, &env).unwrap());
    }

    #[test]
    fn improper_rename_leaves_the_chain_alone() {
        // Renaming onto a column that still exists is not injective; the
        // chain is left untouched rather than fused unsoundly.
        let chain = AlgExpr::Const(edges(&[(1, 2)]))
            .select(sel("src", 1))
            .project(["src", "dst"])
            .rename("src", "dst");
        assert!(matches!(fuse_reshapes(chain), AlgExpr::Rename { .. }));
    }

    #[test]
    fn fusion_recurses_through_join_operands() {
        // Chains on both join sides fuse even though the join itself is not
        // part of any chain.
        let side = |lo: i64| {
            AlgExpr::Const(edges(&[(lo, lo + 1)]))
                .select(sel("src", lo))
                .project(["src", "dst"])
                .rename("dst", "mid")
        };
        let joined = side(1).join(side(2).rename("src", "far"));
        let fused = fuse_reshapes(joined.clone());
        let dbg = format!("{fused:?}");
        assert!(dbg.contains("Emit"), "no Emit in {dbg}");
        let env = Env::new();
        assert_eq!(eval(&joined, &env).unwrap(), eval(&fused, &env).unwrap());
    }

    /// Differential proptest: pushdown never changes the result of a
    /// well-formed plan, across random expressions covering joins, unions,
    /// differences, renames, projections, extends and fixpoints — including
    /// fixpoints whose recursive name collides with a catalog entry.
    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        /// Deterministic byte-stream cursor: the proptest shrinker operates
        /// on the raw bytes, which keeps the generator simple.
        struct Cursor<'a> {
            bytes: &'a [u8],
            pos: usize,
        }

        impl<'a> Cursor<'a> {
            fn next(&mut self) -> u8 {
                let b = self.bytes.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                b
            }
        }

        fn const_rel(cur: &mut Cursor<'_>, cols: &[Sym]) -> Relation {
            let n = (cur.next() % 5) as usize;
            let rows = (0..n).map(|_| {
                Value::tuple(
                    cols.iter()
                        .map(|c| (*c, Value::Int((cur.next() % 4) as i64)))
                        .collect::<Vec<_>>(),
                )
            });
            Relation::from_rows(cols.to_vec(), rows)
        }

        fn rand_pred(cur: &mut Cursor<'_>, cols: &[Sym]) -> Pred {
            let c = cols[(cur.next() as usize) % cols.len()];
            let op = match cur.next() % 4 {
                0 => CmpOp::Eq,
                1 => CmpOp::Ne,
                2 => CmpOp::Lt,
                _ => CmpOp::Ge,
            };
            let rhs = if cur.next().is_multiple_of(3) && cols.len() > 1 {
                Scalar::Col(cols[(cur.next() as usize) % cols.len()])
            } else {
                Scalar::Const(Value::Int((cur.next() % 4) as i64))
            };
            Pred::Cmp(op, Scalar::Col(c), rhs)
        }

        /// Build a random well-formed expression and report its columns.
        fn build(cur: &mut Cursor<'_>, depth: usize) -> (AlgExpr, Vec<Sym>) {
            let col = |s: &str| Sym::new(s);
            if depth == 0 {
                return match cur.next() % 4 {
                    0 => (AlgExpr::Rel(col("r1")), vec![col("a"), col("b")]),
                    1 => (AlgExpr::Rel(col("r2")), vec![col("b"), col("c")]),
                    2 => {
                        let cols = vec![col("a"), col("c")];
                        (AlgExpr::Const(const_rel(cur, &cols)), cols)
                    }
                    _ => {
                        let cols = vec![col("a"), col("b"), col("c")];
                        (AlgExpr::Const(const_rel(cur, &cols)), cols)
                    }
                };
            }
            match cur.next() % 9 {
                0 => {
                    // Select.
                    let (e, cols) = build(cur, depth - 1);
                    let p = rand_pred(cur, &cols);
                    (e.select(p), cols)
                }
                1 => {
                    // Project to a nonempty subset.
                    let (e, cols) = build(cur, depth - 1);
                    let keep: Vec<Sym> = cols
                        .iter()
                        .filter(|_| cur.next().is_multiple_of(2))
                        .copied()
                        .collect();
                    let keep = if keep.is_empty() { vec![cols[0]] } else { keep };
                    (e.project_syms(&keep), keep)
                }
                2 => {
                    // Rename a column to a fresh name.
                    let (e, mut cols) = build(cur, depth - 1);
                    let fresh: Vec<Sym> = ["x", "y", "z", "w"]
                        .iter()
                        .map(|s| col(s))
                        .filter(|s| !cols.contains(s))
                        .collect();
                    let from = cols[(cur.next() as usize) % cols.len()];
                    let to = fresh[(cur.next() as usize) % fresh.len()];
                    for c in &mut cols {
                        if *c == from {
                            *c = to;
                        }
                    }
                    (
                        AlgExpr::Rename {
                            input: Box::new(e),
                            from,
                            to,
                        },
                        cols,
                    )
                }
                3 => {
                    // Natural join.
                    let (l, lcols) = build(cur, depth - 1);
                    let (r, rcols) = build(cur, depth - 1);
                    let mut cols = lcols;
                    for c in rcols {
                        if !cols.contains(&c) {
                            cols.push(c);
                        }
                    }
                    (l.join(r), cols)
                }
                4 | 5 => {
                    // Union / Diff / Intersect against a same-schema const.
                    let (l, cols) = build(cur, depth - 1);
                    let r = AlgExpr::Const(const_rel(cur, &cols));
                    let e = match cur.next() % 3 {
                        0 => l.union(r),
                        1 => AlgExpr::Diff {
                            left: Box::new(l),
                            right: Box::new(r),
                        },
                        _ => AlgExpr::Intersect {
                            left: Box::new(l),
                            right: Box::new(r),
                        },
                    };
                    (e, cols)
                }
                6 => {
                    // Extend with a fresh computed column.
                    let (e, mut cols) = build(cur, depth - 1);
                    let fresh: Vec<Sym> = ["x", "y", "z", "w"]
                        .iter()
                        .map(|s| col(s))
                        .filter(|s| !cols.contains(s))
                        .collect();
                    let new = fresh[(cur.next() as usize) % fresh.len()];
                    let src = cols[(cur.next() as usize) % cols.len()];
                    let e = AlgExpr::Extend {
                        input: Box::new(e),
                        col: new,
                        value: Scalar::Add(
                            Box::new(Scalar::Col(src)),
                            Box::new(Scalar::Const(Value::Int((cur.next() % 3) as i64))),
                        ),
                    };
                    cols.push(new);
                    (e, cols)
                }
                7 => {
                    // Semi- or anti-join.
                    let (l, cols) = build(cur, depth - 1);
                    let (r, _) = build(cur, depth - 1);
                    let e = if cur.next().is_multiple_of(2) {
                        AlgExpr::SemiJoin {
                            left: Box::new(l),
                            right: Box::new(r),
                        }
                    } else {
                        AlgExpr::AntiJoin {
                            left: Box::new(l),
                            right: Box::new(r),
                        }
                    };
                    (e, cols)
                }
                _ => {
                    // Fixpoint; the recursive name may deliberately collide
                    // with catalog entry `r1` to exercise capture handling.
                    let (base, cols) = build(cur, depth - 1);
                    let rec = if cur.next().is_multiple_of(2) {
                        col("r1")
                    } else {
                        col("fx")
                    };
                    // step: σ_p(rec ⋈ m).project(cols) with m sharing one
                    // column — values are drawn from a finite domain, so the
                    // accumulation terminates.
                    let shared = cols[(cur.next() as usize) % cols.len()];
                    let fresh: Vec<Sym> = ["x", "y", "z", "w"]
                        .iter()
                        .map(|s| col(s))
                        .filter(|s| !cols.contains(s))
                        .collect();
                    let mcols = vec![shared, fresh[(cur.next() as usize) % fresh.len()]];
                    let m = AlgExpr::Const(const_rel(cur, &mcols));
                    let joined = AlgExpr::Rel(rec).join(m);
                    let mut jcols = cols.clone();
                    for c in &mcols {
                        if !jcols.contains(c) {
                            jcols.push(*c);
                        }
                    }
                    let step = joined.select(rand_pred(cur, &jcols)).project_syms(&cols);
                    let mode = if cur.next().is_multiple_of(2) {
                        FixpointMode::Naive
                    } else {
                        FixpointMode::Delta
                    };
                    (
                        AlgExpr::Fixpoint {
                            rec,
                            base: Box::new(base),
                            step: Box::new(step),
                            mode,
                        },
                        cols,
                    )
                }
            }
        }

        trait ProjectSyms {
            fn project_syms(self, cols: &[Sym]) -> AlgExpr;
        }

        impl ProjectSyms for AlgExpr {
            fn project_syms(self, cols: &[Sym]) -> AlgExpr {
                AlgExpr::Project {
                    input: Box::new(self),
                    cols: cols.to_vec(),
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]
            #[test]
            fn optimized_plans_agree_with_unoptimized(
                bytes in proptest::collection::vec(any::<u8>(), 16..96),
                depth in 1usize..4,
            ) {
                let mut cur = Cursor { bytes: &bytes, pos: 0 };
                let (expr, top_cols) = build(&mut cur, depth);
                // Wrap in one more selection so there is always something to
                // push from the very top.
                let mut cur2 = Cursor { bytes: &bytes, pos: bytes.len() / 2 };
                let expr = expr.select(rand_pred(&mut cur2, &top_cols));

                let mut env = Env::new();
                let mut cur3 = Cursor { bytes: &bytes, pos: bytes.len() / 3 };
                env.bind("r1", const_rel(&mut cur3, &[Sym::new("a"), Sym::new("b")]));
                env.bind("r2", const_rel(&mut cur3, &[Sym::new("b"), Sym::new("c")]));
                let catalog = |name: Sym| {
                    if name == Sym::new("r1") {
                        Some(vec![Sym::new("a"), Sym::new("b")])
                    } else if name == Sym::new("r2") {
                        Some(vec![Sym::new("b"), Sym::new("c")])
                    } else {
                        None
                    }
                };

                let optimized = push_selections_with(expr.clone(), &catalog);
                let orig = eval(&expr, &env);
                let opt = eval(&optimized, &env);
                if let Ok(orig_rel) = orig {
                    let opt_rel = opt.expect("optimized plan must evaluate when the original does");
                    prop_assert_eq!(orig_rel, opt_rel);
                }
            }

            /// Fusion differential: collapsing reshape chains into emit nodes
            /// never changes the result of a plan the original evaluates —
            /// the fused plan may only error *less* (it skips intermediate
            /// materializations that could, e.g., trip a type error on rows
            /// the final predicate would drop), never differently.
            #[test]
            fn fused_plans_agree_with_unfused(
                bytes in proptest::collection::vec(any::<u8>(), 16..96),
                depth in 1usize..4,
            ) {
                let mut cur = Cursor { bytes: &bytes, pos: 0 };
                let (expr, top_cols) = build(&mut cur, depth);
                // Cap with a projection so the outermost shape is the
                // Project-over-chain pattern fusion targets.
                let keep: Vec<Sym> = top_cols
                    .iter()
                    .filter(|_| cur.next().is_multiple_of(2))
                    .copied()
                    .collect();
                let keep = if keep.is_empty() { vec![top_cols[0]] } else { keep };
                let expr = expr.project_syms(&keep);

                let mut env = Env::new();
                let mut cur3 = Cursor { bytes: &bytes, pos: bytes.len() / 3 };
                env.bind("r1", const_rel(&mut cur3, &[Sym::new("a"), Sym::new("b")]));
                env.bind("r2", const_rel(&mut cur3, &[Sym::new("b"), Sym::new("c")]));

                let fused = fuse_reshapes(expr.clone());
                if let Ok(orig_rel) = eval(&expr, &env) {
                    let fused_rel =
                        eval(&fused, &env).expect("fused plan must evaluate when the original does");
                    prop_assert_eq!(orig_rel, fused_rel);
                }
            }

            /// Composition differential: the production pipeline runs
            /// pushdown *then* fusion; the composed plan agrees too.
            #[test]
            fn pushed_then_fused_plans_agree_with_unoptimized(
                bytes in proptest::collection::vec(any::<u8>(), 16..96),
                depth in 1usize..4,
            ) {
                let mut cur = Cursor { bytes: &bytes, pos: 0 };
                let (expr, top_cols) = build(&mut cur, depth);
                let mut cur2 = Cursor { bytes: &bytes, pos: bytes.len() / 2 };
                let expr = expr.select(rand_pred(&mut cur2, &top_cols)).project_syms(&top_cols);

                let mut env = Env::new();
                let mut cur3 = Cursor { bytes: &bytes, pos: bytes.len() / 3 };
                env.bind("r1", const_rel(&mut cur3, &[Sym::new("a"), Sym::new("b")]));
                env.bind("r2", const_rel(&mut cur3, &[Sym::new("b"), Sym::new("c")]));
                let catalog = |name: Sym| {
                    if name == Sym::new("r1") {
                        Some(vec![Sym::new("a"), Sym::new("b")])
                    } else if name == Sym::new("r2") {
                        Some(vec![Sym::new("b"), Sym::new("c")])
                    } else {
                        None
                    }
                };

                let optimized = fuse_reshapes(push_selections_with(expr.clone(), &catalog));
                if let Ok(orig_rel) = eval(&expr, &env) {
                    let opt_rel = eval(&optimized, &env)
                        .expect("optimized plan must evaluate when the original does");
                    prop_assert_eq!(orig_rel, opt_rel);
                }
            }
        }
    }
}
