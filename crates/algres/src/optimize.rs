//! A small algebraic optimizer: selection pushdown.
//!
//! ALGRES is main-memory, so the dominant cost is intermediate-result size;
//! pushing selections below joins, products and unions is the classical
//! rewrite that attacks it. The E10 benchmark runs the football workload
//! with and without this pass.

use logres_model::Sym;

use crate::expr::{AlgExpr, Pred};

/// A column catalog for named relations: tells the optimizer which columns
/// `Rel(name)` produces, so predicates can sink past relation references.
pub type Catalog<'a> = &'a dyn Fn(Sym) -> Option<Vec<Sym>>;

/// Push selections as close to the leaves as legal, without knowledge of
/// named relations' columns (pushdown stops at `Rel` references).
pub fn push_selections(expr: AlgExpr) -> AlgExpr {
    push_selections_with(expr, &|_| None)
}

/// Push selections with a catalog resolving the columns of named relations.
pub fn push_selections_with(expr: AlgExpr, catalog: Catalog<'_>) -> AlgExpr {
    rewrite(expr, catalog)
}

fn rewrite(expr: AlgExpr, catalog: Catalog<'_>) -> AlgExpr {
    match expr {
        AlgExpr::Select { input, pred } => {
            let input = rewrite(*input, catalog);
            let conjuncts = split_and(pred);
            push_conjuncts(input, conjuncts, catalog)
        }
        AlgExpr::Project { input, cols } => AlgExpr::Project {
            input: Box::new(rewrite(*input, catalog)),
            cols,
        },
        AlgExpr::Rename { input, from, to } => AlgExpr::Rename {
            input: Box::new(rewrite(*input, catalog)),
            from,
            to,
        },
        AlgExpr::Product { left, right } => AlgExpr::Product {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
        },
        AlgExpr::Join { left, right } => AlgExpr::Join {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
        },
        AlgExpr::Union { left, right } => AlgExpr::Union {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
        },
        AlgExpr::Diff { left, right } => AlgExpr::Diff {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
        },
        AlgExpr::Intersect { left, right } => AlgExpr::Intersect {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
        },
        AlgExpr::SemiJoin { left, right } => AlgExpr::SemiJoin {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
        },
        AlgExpr::AntiJoin { left, right } => AlgExpr::AntiJoin {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
        },
        AlgExpr::Extend { input, col, value } => AlgExpr::Extend {
            input: Box::new(rewrite(*input, catalog)),
            col,
            value,
        },
        AlgExpr::Nest { input, cols, into } => AlgExpr::Nest {
            input: Box::new(rewrite(*input, catalog)),
            cols,
            into,
        },
        AlgExpr::Unnest { input, col } => AlgExpr::Unnest {
            input: Box::new(rewrite(*input, catalog)),
            col,
        },
        AlgExpr::Aggregate {
            input,
            group,
            agg,
            on,
            into,
        } => AlgExpr::Aggregate {
            input: Box::new(rewrite(*input, catalog)),
            group,
            agg,
            on,
            into,
        },
        AlgExpr::Fixpoint {
            rec,
            base,
            step,
            mode,
        } => AlgExpr::Fixpoint {
            rec,
            base: Box::new(rewrite(*base, catalog)),
            step: Box::new(rewrite(*step, catalog)),
            mode,
        },
        leaf @ (AlgExpr::Rel(_) | AlgExpr::Const(_)) => leaf,
    }
}

fn split_and(p: Pred) -> Vec<Pred> {
    match p {
        Pred::And(a, b) => {
            let mut out = split_and(*a);
            out.extend(split_and(*b));
            out
        }
        Pred::True => Vec::new(),
        other => vec![other],
    }
}

/// Columns produced by an expression, when statically known. `None` means
/// "unknown" — pushdown stops there. Named relations resolve through the
/// catalog.
fn out_cols(expr: &AlgExpr, catalog: Catalog<'_>) -> Option<Vec<Sym>> {
    match expr {
        AlgExpr::Rel(name) => catalog(*name),
        AlgExpr::Const(r) => Some(r.cols().to_vec()),
        AlgExpr::Project { cols, .. } => Some(cols.clone()),
        AlgExpr::Rename { input, from, to } => {
            let mut cols = out_cols(input, catalog)?;
            for c in &mut cols {
                if c == from {
                    *c = *to;
                }
            }
            Some(cols)
        }
        AlgExpr::Select { input, .. } => out_cols(input, catalog),
        AlgExpr::Product { left, right } => {
            let mut cols = out_cols(left, catalog)?;
            cols.extend(out_cols(right, catalog)?);
            Some(cols)
        }
        AlgExpr::Join { left, right } => {
            let mut cols = out_cols(left, catalog)?;
            for c in out_cols(right, catalog)? {
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
            Some(cols)
        }
        AlgExpr::Union { left, .. }
        | AlgExpr::Diff { left, .. }
        | AlgExpr::Intersect { left, .. }
        | AlgExpr::SemiJoin { left, .. }
        | AlgExpr::AntiJoin { left, .. } => out_cols(left, catalog),
        AlgExpr::Extend { input, col, .. } => {
            let mut cols = out_cols(input, catalog)?;
            cols.push(*col);
            Some(cols)
        }
        _ => None,
    }
}

fn push_conjuncts(input: AlgExpr, conjuncts: Vec<Pred>, catalog: Catalog<'_>) -> AlgExpr {
    let mut expr = input;
    let mut remaining = Vec::new();
    for p in conjuncts {
        expr = match try_push(expr, &p, catalog) {
            Ok(e) => e,
            Err(e) => {
                remaining.push(p);
                e
            }
        };
    }
    if remaining.is_empty() {
        expr
    } else {
        AlgExpr::Select {
            input: Box::new(expr),
            pred: Pred::all(remaining),
        }
    }
}

/// Try to sink one conjunct one level down; `Ok` means it was absorbed.
fn try_push(expr: AlgExpr, p: &Pred, catalog: Catalog<'_>) -> Result<AlgExpr, AlgExpr> {
    let needs = p.cols();
    let covered = |e: &AlgExpr| -> bool {
        out_cols(e, catalog).is_some_and(|cols| needs.iter().all(|c| cols.contains(c)))
    };
    match expr {
        AlgExpr::Join { left, right } => {
            if covered(&left) {
                Ok(AlgExpr::Join {
                    left: Box::new(push_conjuncts(*left, vec![p.clone()], catalog)),
                    right,
                })
            } else if covered(&right) {
                Ok(AlgExpr::Join {
                    left,
                    right: Box::new(push_conjuncts(*right, vec![p.clone()], catalog)),
                })
            } else {
                Err(AlgExpr::Join { left, right })
            }
        }
        AlgExpr::Product { left, right } => {
            if covered(&left) {
                Ok(AlgExpr::Product {
                    left: Box::new(push_conjuncts(*left, vec![p.clone()], catalog)),
                    right,
                })
            } else if covered(&right) {
                Ok(AlgExpr::Product {
                    left,
                    right: Box::new(push_conjuncts(*right, vec![p.clone()], catalog)),
                })
            } else {
                Err(AlgExpr::Product { left, right })
            }
        }
        // Selection distributes over union/intersect/difference (left side
        // for difference is enough for filtering; both sides stay correct
        // because σ(A − B) = σ(A) − B).
        AlgExpr::Union { left, right } => Ok(AlgExpr::Union {
            left: Box::new(push_conjuncts(*left, vec![p.clone()], catalog)),
            right: Box::new(push_conjuncts(*right, vec![p.clone()], catalog)),
        }),
        AlgExpr::Diff { left, right } => Ok(AlgExpr::Diff {
            left: Box::new(push_conjuncts(*left, vec![p.clone()], catalog)),
            right,
        }),
        other => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Env};
    use crate::expr::{CmpOp, Scalar};
    use crate::relation::Relation;
    use logres_model::Value;

    fn edges(pairs: &[(i64, i64)]) -> Relation {
        Relation::from_rows(
            ["src", "dst"],
            pairs
                .iter()
                .map(|&(a, b)| Value::tuple([("src", Value::Int(a)), ("dst", Value::Int(b))])),
        )
    }

    fn sel(col: &str, v: i64) -> Pred {
        Pred::Cmp(CmpOp::Eq, Scalar::col(col), Scalar::Const(Value::Int(v)))
    }

    #[test]
    fn selection_sinks_into_join_side() {
        // σ_{src=1}(A(src,mid) ⋈ B(mid,dst)) → σ on A only.
        let a = AlgExpr::Const(edges(&[(1, 2), (5, 6)])).rename("dst", "mid");
        let b = AlgExpr::Const(edges(&[(2, 3), (6, 7)]))
            .rename("src", "mid")
            .rename("dst", "far");
        let joined = a.join(b).select(sel("src", 1));
        let optimized = push_selections(joined.clone());
        // The top-level node is now the join, not the select.
        assert!(matches!(optimized, AlgExpr::Join { .. }));
        // And the results agree.
        let env = Env::new();
        assert_eq!(
            eval(&joined, &env).unwrap(),
            eval(&optimized, &env).unwrap()
        );
    }

    #[test]
    fn selection_distributes_over_union() {
        let u = AlgExpr::Const(edges(&[(1, 2)]))
            .union(AlgExpr::Const(edges(&[(3, 4)])))
            .select(sel("src", 1));
        let optimized = push_selections(u.clone());
        assert!(matches!(optimized, AlgExpr::Union { .. }));
        let env = Env::new();
        assert_eq!(eval(&u, &env).unwrap(), eval(&optimized, &env).unwrap());
    }

    #[test]
    fn unpushable_selection_is_preserved() {
        // Predicate spanning both join sides cannot sink.
        let a = AlgExpr::Const(edges(&[(1, 2)])).rename("dst", "mid");
        let b = AlgExpr::Const(edges(&[(2, 3)]))
            .rename("src", "mid")
            .rename("dst", "far");
        let joined = a
            .join(b)
            .select(Pred::Cmp(CmpOp::Lt, Scalar::col("src"), Scalar::col("far")));
        let optimized = push_selections(joined.clone());
        assert!(matches!(optimized, AlgExpr::Select { .. }));
        let env = Env::new();
        assert_eq!(
            eval(&joined, &env).unwrap(),
            eval(&optimized, &env).unwrap()
        );
    }

    #[test]
    fn conjunctions_split_and_sink_separately() {
        let a = AlgExpr::Const(edges(&[(1, 2), (9, 2)])).rename("dst", "mid");
        let b = AlgExpr::Const(edges(&[(2, 3), (2, 9)]))
            .rename("src", "mid")
            .rename("dst", "far");
        let p = Pred::And(Box::new(sel("src", 1)), Box::new(sel("far", 3)));
        let joined = a.join(b).select(p);
        let optimized = push_selections(joined.clone());
        assert!(matches!(optimized, AlgExpr::Join { .. }));
        let env = Env::new();
        let r = eval(&optimized, &env).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(eval(&joined, &env).unwrap(), r);
    }
}
