//! The extended relational algebra expression language.

use std::fmt;

use logres_model::{Sym, Value};

use crate::relation::Relation;

/// Scalar expressions evaluated against one tuple.
#[derive(Debug, Clone, PartialEq)]
// Field names are self-documenting; variant docs carry the semantics.
#[allow(missing_docs)]
pub enum Scalar {
    /// A column of the current tuple.
    Col(Sym),
    /// A constant.
    Const(Value),
    /// Integer addition.
    Add(Box<Scalar>, Box<Scalar>),
    /// Integer subtraction.
    Sub(Box<Scalar>, Box<Scalar>),
    /// Integer multiplication.
    Mul(Box<Scalar>, Box<Scalar>),
    /// Integer division.
    Div(Box<Scalar>, Box<Scalar>),
    /// Build a tuple value from sub-expressions.
    Tuple(Vec<(Sym, Scalar)>),
    /// Project a field out of a tuple-valued expression.
    Field(Box<Scalar>, Sym),
}

impl Scalar {
    /// Convenience column reference.
    pub fn col(c: impl Into<Sym>) -> Scalar {
        Scalar::Col(c.into())
    }

    /// All columns this expression reads.
    pub fn cols(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.collect_cols(&mut out);
        out
    }

    fn collect_cols(&self, out: &mut Vec<Sym>) {
        match self {
            Scalar::Col(c) => out.push(*c),
            Scalar::Const(_) => {}
            Scalar::Add(a, b) | Scalar::Sub(a, b) | Scalar::Mul(a, b) | Scalar::Div(a, b) => {
                a.collect_cols(out);
                b.collect_cols(out);
            }
            Scalar::Tuple(fs) => {
                for (_, s) in fs {
                    s.collect_cols(out);
                }
            }
            Scalar::Field(s, _) => s.collect_cols(out),
        }
    }
}

/// Comparison operators for selection predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operator names speak for themselves
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Selection predicates.
#[derive(Debug, Clone, PartialEq)]
// Field names are self-documenting; variant docs carry the semantics.
#[allow(missing_docs)]
pub enum Pred {
    /// Compare two scalars (ordering is the structural `Value` order for
    /// non-integers, integer order for integers).
    Cmp(CmpOp, Scalar, Scalar),
    /// Set/multiset/sequence membership: `elem ∈ coll`.
    In(Scalar, Scalar),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
    /// Always true (unit for `And` folds).
    True,
}

impl Pred {
    /// `a = b` on columns/constants.
    pub fn eq(a: Scalar, b: Scalar) -> Pred {
        Pred::Cmp(CmpOp::Eq, a, b)
    }

    /// Conjunction of a list of predicates.
    pub fn all(preds: impl IntoIterator<Item = Pred>) -> Pred {
        preds.into_iter().fold(Pred::True, |acc, p| match acc {
            Pred::True => p,
            acc => Pred::And(Box::new(acc), Box::new(p)),
        })
    }

    /// All columns the predicate reads.
    pub fn cols(&self) -> Vec<Sym> {
        match self {
            Pred::Cmp(_, a, b) | Pred::In(a, b) => {
                let mut out = a.cols();
                out.extend(b.cols());
                out
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                let mut out = a.cols();
                out.extend(b.cols());
                out
            }
            Pred::Not(p) => p.cols(),
            Pred::True => Vec::new(),
        }
    }
}

/// Grouped aggregation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFun {
    /// Group size.
    Count,
    /// Integer sum.
    Sum,
    /// Integer minimum.
    Min,
    /// Integer maximum.
    Max,
    /// Truncated integer mean.
    Avg,
    /// Collect the grouped values into a set (the NF² nest-as-aggregate).
    CollectSet,
    /// Collect into a multiset (keeps duplicates).
    CollectMultiset,
}

/// How a [`AlgExpr::Fixpoint`] is evaluated — the "liberal" closure of
/// ALGRES with switchable semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FixpointMode {
    /// Re-evaluate the step over the full accumulated relation each round.
    #[default]
    Naive,
    /// Semi-naive: bind the recursive reference to the last round's *new*
    /// tuples only. Exact for linear steps (at most one recursive
    /// reference); the evaluator falls back to naive when the step mentions
    /// the recursive relation more than once.
    Delta,
}

/// An algebra expression.
#[derive(Debug, Clone, PartialEq)]
// Field names are self-documenting; variant docs carry the semantics.
#[allow(missing_docs)]
pub enum AlgExpr {
    /// A named relation from the environment.
    Rel(Sym),
    /// A literal relation.
    Const(Relation),
    /// σ — keep tuples satisfying the predicate.
    Select { input: Box<AlgExpr>, pred: Pred },
    /// π — keep (and reorder) the listed columns; duplicates collapse.
    Project { input: Box<AlgExpr>, cols: Vec<Sym> },
    /// ρ — rename a column.
    Rename {
        input: Box<AlgExpr>,
        from: Sym,
        to: Sym,
    },
    /// × — Cartesian product (disjoint columns).
    Product {
        left: Box<AlgExpr>,
        right: Box<AlgExpr>,
    },
    /// ⋈ — natural join on shared columns.
    Join {
        left: Box<AlgExpr>,
        right: Box<AlgExpr>,
    },
    /// ∪ (same columns).
    Union {
        left: Box<AlgExpr>,
        right: Box<AlgExpr>,
    },
    /// − (same columns).
    Diff {
        left: Box<AlgExpr>,
        right: Box<AlgExpr>,
    },
    /// ∩ (same columns).
    Intersect {
        left: Box<AlgExpr>,
        right: Box<AlgExpr>,
    },
    /// ⋉ — semijoin: left tuples with at least one partner in `right` on
    /// the shared columns (output columns = left's).
    SemiJoin {
        left: Box<AlgExpr>,
        right: Box<AlgExpr>,
    },
    /// ▷ — antijoin: left tuples with *no* partner in `right` on the shared
    /// columns. This is how negated literals compile ([Ca90]).
    AntiJoin {
        left: Box<AlgExpr>,
        right: Box<AlgExpr>,
    },
    /// Add a computed column.
    Extend {
        input: Box<AlgExpr>,
        col: Sym,
        value: Scalar,
    },
    /// Fused emit-time reshape: one pass over `input` that keeps tuples
    /// satisfying `pred` and rebuilds each survivor directly into the output
    /// layout — `cols` lists the output columns with the scalar (over the
    /// input schema) that computes each. Produced by
    /// [`crate::fuse_reshapes`], which collapses a
    /// `Rename* ∘ Project ∘ Extend*/Select*` chain into one node; when
    /// `input` is a `Join`, the evaluator emits head-layout tuples straight
    /// out of the join probe without materializing the joined relation.
    Emit {
        input: Box<AlgExpr>,
        pred: Pred,
        cols: Vec<(Sym, Scalar)>,
    },
    /// NF² nest: group by all columns *except* `cols`, collapsing the
    /// `cols`-projection of each group into a set-valued column `into`
    /// (each element is a tuple over `cols`, or the bare value when `cols`
    /// is a single column).
    Nest {
        input: Box<AlgExpr>,
        cols: Vec<Sym>,
        into: Sym,
    },
    /// NF² unnest: replace the collection-valued column `col` by one row
    /// per element.
    Unnest { input: Box<AlgExpr>, col: Sym },
    /// Grouped aggregation: group by `group`, apply `agg` to column `on`,
    /// emitting `group ∪ {into}`.
    Aggregate {
        input: Box<AlgExpr>,
        group: Vec<Sym>,
        agg: AggFun,
        on: Sym,
        into: Sym,
    },
    /// The liberal fixpoint: starting from `base`, repeatedly union in
    /// `step` (which may reference the accumulator as `Rel(rec)`), until no
    /// new tuples appear.
    Fixpoint {
        rec: Sym,
        base: Box<AlgExpr>,
        step: Box<AlgExpr>,
        mode: FixpointMode,
    },
}

impl AlgExpr {
    /// Wrap in a selection.
    pub fn select(self, pred: Pred) -> AlgExpr {
        AlgExpr::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// Wrap in a projection.
    pub fn project<I, S>(self, cols: I) -> AlgExpr
    where
        I: IntoIterator<Item = S>,
        S: Into<Sym>,
    {
        AlgExpr::Project {
            input: Box::new(self),
            cols: cols.into_iter().map(Into::into).collect(),
        }
    }

    /// Natural join.
    pub fn join(self, other: AlgExpr) -> AlgExpr {
        AlgExpr::Join {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Union.
    pub fn union(self, other: AlgExpr) -> AlgExpr {
        AlgExpr::Union {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Rename a column.
    pub fn rename(self, from: impl Into<Sym>, to: impl Into<Sym>) -> AlgExpr {
        AlgExpr::Rename {
            input: Box::new(self),
            from: from.into(),
            to: to.into(),
        }
    }

    /// Stable lower-case operator name, used by EXPLAIN output and as the
    /// `op=` label of the `logres_plan_op_*` metrics.
    pub fn op_name(&self) -> &'static str {
        match self {
            AlgExpr::Rel(_) => "scan",
            AlgExpr::Const(_) => "const",
            AlgExpr::Select { .. } => "select",
            AlgExpr::Project { .. } => "project",
            AlgExpr::Rename { .. } => "rename",
            AlgExpr::Product { .. } => "product",
            AlgExpr::Join { .. } => "join",
            AlgExpr::Union { .. } => "union",
            AlgExpr::Diff { .. } => "diff",
            AlgExpr::Intersect { .. } => "intersect",
            AlgExpr::SemiJoin { .. } => "semijoin",
            AlgExpr::AntiJoin { .. } => "antijoin",
            AlgExpr::Extend { .. } => "extend",
            AlgExpr::Emit { .. } => "emit",
            AlgExpr::Nest { .. } => "nest",
            AlgExpr::Unnest { .. } => "unnest",
            AlgExpr::Aggregate { .. } => "aggregate",
            AlgExpr::Fixpoint { .. } => "fixpoint",
        }
    }

    /// Number of references to `Rel(name)` in this expression (used to
    /// decide whether semi-naive evaluation is exact).
    pub fn count_refs(&self, name: Sym) -> usize {
        match self {
            AlgExpr::Rel(r) => usize::from(*r == name),
            AlgExpr::Const(_) => 0,
            AlgExpr::Select { input, .. }
            | AlgExpr::Project { input, .. }
            | AlgExpr::Rename { input, .. }
            | AlgExpr::Extend { input, .. }
            | AlgExpr::Emit { input, .. }
            | AlgExpr::Nest { input, .. }
            | AlgExpr::Unnest { input, .. }
            | AlgExpr::Aggregate { input, .. } => input.count_refs(name),
            AlgExpr::Product { left, right }
            | AlgExpr::Join { left, right }
            | AlgExpr::Union { left, right }
            | AlgExpr::Diff { left, right }
            | AlgExpr::Intersect { left, right }
            | AlgExpr::SemiJoin { left, right }
            | AlgExpr::AntiJoin { left, right } => left.count_refs(name) + right.count_refs(name),
            AlgExpr::Fixpoint {
                rec, base, step, ..
            } => {
                // An inner fixpoint shadows `name` if it reuses the symbol.
                base.count_refs(name)
                    + if *rec == name {
                        0
                    } else {
                        step.count_refs(name)
                    }
            }
        }
    }

    /// The direct sub-expressions of this node, in evaluation order. Used by
    /// plan walkers (id registration, EXPLAIN rendering) so they cannot fall
    /// out of sync with the variant list.
    pub fn children(&self) -> Vec<&AlgExpr> {
        match self {
            AlgExpr::Rel(_) | AlgExpr::Const(_) => Vec::new(),
            AlgExpr::Select { input, .. }
            | AlgExpr::Project { input, .. }
            | AlgExpr::Rename { input, .. }
            | AlgExpr::Extend { input, .. }
            | AlgExpr::Emit { input, .. }
            | AlgExpr::Nest { input, .. }
            | AlgExpr::Unnest { input, .. }
            | AlgExpr::Aggregate { input, .. } => vec![input],
            AlgExpr::Product { left, right }
            | AlgExpr::Join { left, right }
            | AlgExpr::Union { left, right }
            | AlgExpr::Diff { left, right }
            | AlgExpr::Intersect { left, right }
            | AlgExpr::SemiJoin { left, right }
            | AlgExpr::AntiJoin { left, right } => vec![left, right],
            AlgExpr::Fixpoint { base, step, .. } => vec![base, step],
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Col(c) => write!(f, "{c}"),
            Scalar::Const(v) => write!(f, "{v}"),
            Scalar::Add(a, b) => write!(f, "({a} + {b})"),
            Scalar::Sub(a, b) => write!(f, "({a} - {b})"),
            Scalar::Mul(a, b) => write!(f, "({a} * {b})"),
            Scalar::Div(a, b) => write!(f, "({a} / {b})"),
            Scalar::Tuple(fs) => {
                f.write_str("(")?;
                for (i, (l, s)) in fs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{l}: {s}")?;
                }
                f.write_str(")")
            }
            Scalar::Field(e, l) => write!(f, "{e}.{l}"),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            Pred::In(e, c) => write!(f, "{e} in {c}"),
            Pred::And(a, b) => write!(f, "{a} and {b}"),
            Pred::Or(a, b) => write!(f, "({a} or {b})"),
            Pred::Not(p) => write!(f, "not ({p})"),
            Pred::True => f.write_str("true"),
        }
    }
}

impl fmt::Display for AggFun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFun::Count => "count",
            AggFun::Sum => "sum",
            AggFun::Min => "min",
            AggFun::Max => "max",
            AggFun::Avg => "avg",
            AggFun::CollectSet => "collect_set",
            AggFun::CollectMultiset => "collect_multiset",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_all_folds_with_true_unit() {
        assert_eq!(Pred::all([]), Pred::True);
        let p = Pred::all([Pred::True, Pred::eq(Scalar::col("a"), Scalar::col("b"))]);
        assert!(matches!(p, Pred::Cmp(CmpOp::Eq, _, _)));
    }

    #[test]
    fn scalar_and_pred_cols_are_collected() {
        let s = Scalar::Add(
            Box::new(Scalar::col("x")),
            Box::new(Scalar::Field(Box::new(Scalar::col("t")), Sym::new("f"))),
        );
        assert_eq!(s.cols(), vec![Sym::new("x"), Sym::new("t")]);
        let p = Pred::And(
            Box::new(Pred::eq(Scalar::col("a"), Scalar::Const(Value::Int(1)))),
            Box::new(Pred::In(Scalar::col("e"), Scalar::col("s"))),
        );
        let mut cols = p.cols();
        cols.sort();
        assert_eq!(cols, vec![Sym::new("a"), Sym::new("e"), Sym::new("s")]);
    }

    #[test]
    fn count_refs_respects_fixpoint_shadowing() {
        let rec = Sym::new("tc");
        let inner = AlgExpr::Fixpoint {
            rec,
            base: Box::new(AlgExpr::Rel(rec)),
            step: Box::new(AlgExpr::Rel(rec)),
            mode: FixpointMode::Naive,
        };
        // The base counts (evaluated in the outer scope); the step is
        // shadowed.
        assert_eq!(inner.count_refs(rec), 1);
        let join = AlgExpr::Rel(rec).join(AlgExpr::Rel(rec));
        assert_eq!(join.count_refs(rec), 2);
    }

    #[test]
    fn op_names_and_displays_are_stable() {
        assert_eq!(AlgExpr::Rel(Sym::new("e")).op_name(), "scan");
        assert_eq!(
            AlgExpr::Rel(Sym::new("e"))
                .join(AlgExpr::Rel(Sym::new("e")))
                .op_name(),
            "join"
        );
        let p = Pred::And(
            Box::new(Pred::Cmp(
                CmpOp::Eq,
                Scalar::col("a"),
                Scalar::Const(Value::Int(1)),
            )),
            Box::new(Pred::Not(Box::new(Pred::In(
                Scalar::col("e"),
                Scalar::col("s"),
            )))),
        );
        assert_eq!(p.to_string(), "a = 1 and not (e in s)");
        let s = Scalar::Add(
            Box::new(Scalar::col("x")),
            Box::new(Scalar::Field(Box::new(Scalar::col("t")), Sym::new("f"))),
        );
        assert_eq!(s.to_string(), "(x + t.f)");
        assert_eq!(AggFun::CollectSet.to_string(), "collect_set");
    }

    #[test]
    fn builder_methods_compose() {
        let e = AlgExpr::Rel(Sym::new("parent"))
            .rename("par", "anc")
            .select(Pred::True)
            .project(["anc"]);
        assert!(matches!(e, AlgExpr::Project { .. }));
    }
}
