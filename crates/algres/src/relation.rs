//! NF² relations: sets of labeled tuples over complex values.
//!
//! A relation knows its column list and stores tuples in insertion order
//! with hash-based deduplication — iteration is deterministic for a
//! deterministic construction sequence, which the fixpoint evaluators rely
//! on for reproducible runs.

use rustc_hash::FxHashSet;

use logres_model::{Sym, Value};

/// A set of tuples with a fixed column list.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    cols: Vec<Sym>,
    /// Insertion-ordered tuple storage.
    rows: Vec<Value>,
    /// Hash membership index over `rows`.
    index: FxHashSet<Value>,
}

impl Relation {
    /// An empty relation with the given columns.
    pub fn new<I, S>(cols: I) -> Relation
    where
        I: IntoIterator<Item = S>,
        S: Into<Sym>,
    {
        Relation {
            cols: cols.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            index: FxHashSet::default(),
        }
    }

    /// Build a relation from rows of `(label, value)` pairs; the column list
    /// is taken from the declared `cols`.
    pub fn from_rows<I, S>(cols: I, rows: impl IntoIterator<Item = Value>) -> Relation
    where
        I: IntoIterator<Item = S>,
        S: Into<Sym>,
    {
        let mut r = Relation::new(cols);
        for row in rows {
            r.insert(row);
        }
        r
    }

    /// The column list.
    pub fn cols(&self) -> &[Sym] {
        &self.cols
    }

    /// Does the relation have this column?
    pub fn has_col(&self, c: Sym) -> bool {
        self.cols.contains(&c)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a tuple; returns whether it was new. The tuple must be a
    /// [`Value::Tuple`] whose labels are exactly the relation's columns
    /// (checked in debug builds).
    pub fn insert(&mut self, tuple: Value) -> bool {
        debug_assert!(
            {
                let mut expect: Vec<Sym> = self.cols.clone();
                expect.sort();
                tuple
                    .as_tuple()
                    .map(|fs| fs.iter().map(|(l, _)| *l).collect::<Vec<_>>())
                    == Some(expect)
            },
            "tuple labels do not match relation columns {:?}: {tuple}",
            self.cols
        );
        if self.index.insert(tuple.clone()) {
            self.rows.push(tuple);
            true
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Value) -> bool {
        self.index.contains(tuple)
    }

    /// Iterate tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> + '_ {
        self.rows.iter()
    }

    /// Extend with all tuples of another relation (same columns); returns
    /// how many were new.
    pub fn extend_from(&mut self, other: &Relation) -> usize {
        let mut n = 0;
        for t in other.iter() {
            if self.insert(t.clone()) {
                n += 1;
            }
        }
        n
    }

    /// The field of a row tuple by column label.
    pub fn field(tuple: &Value, col: Sym) -> Option<&Value> {
        tuple.field(col)
    }

    /// Do two relations contain the same tuple set (ignoring order)?
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.len() == other.len() && self.iter().all(|t| other.contains(t))
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.cols == other.cols && self.set_eq(other)
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(a: i64, b: i64) -> Value {
        Value::tuple([("a", Value::Int(a)), ("b", Value::Int(b))])
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(["a", "b"]);
        assert!(r.insert(row(1, 2)));
        assert!(!r.insert(row(1, 2)));
        assert!(r.insert(row(2, 1)));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&row(1, 2)));
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut r = Relation::new(["a", "b"]);
        r.insert(row(3, 3));
        r.insert(row(1, 1));
        r.insert(row(2, 2));
        let got: Vec<i64> = r
            .iter()
            .map(|t| t.field(Sym::new("a")).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(got, vec![3, 1, 2]);
    }

    #[test]
    fn set_equality_ignores_order() {
        let mut r1 = Relation::new(["a", "b"]);
        let mut r2 = Relation::new(["a", "b"]);
        r1.insert(row(1, 2));
        r1.insert(row(3, 4));
        r2.insert(row(3, 4));
        r2.insert(row(1, 2));
        assert_eq!(r1, r2);
        r2.insert(row(5, 6));
        assert_ne!(r1, r2);
    }

    #[test]
    fn extend_from_counts_new_rows() {
        let mut r1 = Relation::new(["a", "b"]);
        r1.insert(row(1, 2));
        let mut r2 = Relation::new(["a", "b"]);
        r2.insert(row(1, 2));
        r2.insert(row(3, 4));
        assert_eq!(r1.extend_from(&r2), 1);
        assert_eq!(r1.len(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "labels do not match")]
    fn mismatched_labels_panic_in_debug() {
        let mut r = Relation::new(["a", "b"]);
        r.insert(Value::tuple([("x", Value::Int(1))]));
    }
}
