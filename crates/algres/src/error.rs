//! Evaluation errors of the ALGRES algebra.

use std::fmt;

use logres_model::Sym;

/// Runtime errors raised while evaluating an algebra expression.
#[derive(Debug, Clone, PartialEq, Eq)]
// Field names are self-documenting; variant docs carry the semantics.
#[allow(missing_docs)]
pub enum AlgError {
    /// A referenced relation is not bound in the environment.
    UnknownRelation(Sym),
    /// A referenced column does not exist in the input relation.
    UnknownColumn { rel: String, col: Sym },
    /// Binary operators require compatible column sets.
    SchemaMismatch { left: Vec<Sym>, right: Vec<Sym> },
    /// Product requires disjoint column sets.
    OverlappingColumns(Vec<Sym>),
    /// A scalar expression was applied to a value of the wrong shape.
    BadValue(String),
    /// Unnest on a column that does not hold a collection.
    NotACollection(Sym),
    /// The fixpoint did not converge within the step limit.
    FixpointDiverged { steps: usize },
}

impl fmt::Display for AlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            AlgError::UnknownColumn { rel, col } => {
                write!(f, "relation {rel} has no column `{col}`")
            }
            AlgError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch: {left:?} vs {right:?}")
            }
            AlgError::OverlappingColumns(cols) => {
                write!(f, "product operands share columns {cols:?}")
            }
            AlgError::BadValue(msg) => write!(f, "bad value: {msg}"),
            AlgError::NotACollection(c) => write!(f, "column `{c}` does not hold a collection"),
            AlgError::FixpointDiverged { steps } => {
                write!(f, "fixpoint did not converge within {steps} steps")
            }
        }
    }
}

impl std::error::Error for AlgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AlgError::UnknownColumn {
            rel: "game".to_owned(),
            col: Sym::new("h_team"),
        };
        assert!(e.to_string().contains("h_team"));
    }
}
