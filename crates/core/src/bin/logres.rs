//! The LOGRES interactive shell and whole-program checker.
//!
//! ```text
//! cargo run -p logres --bin logres            # fresh session
//! cargo run -p logres --bin logres -- db.lgr  # load a program or state
//!
//! logres check <file> [--json] [--deny-warnings] [--flow] [--plan] [--explain]
//!     Run the static analyzer over a program (or a saved state) without
//!     evaluating it. Exit 0 when clean, 1 on errors (or on warnings with
//!     --deny-warnings), 2 on usage or I/O problems. `--flow` adds the
//!     abstract-interpretation flow pass (lints L008-L011) and feeds its
//!     summaries to `--explain`; `--plan` renders the goal-directed
//!     (magic-set) plan; `--explain` renders the compiled ALGRES operator
//!     trees (`--json` switches both diagnostics and the explain output to
//!     machine-readable lines).
//! ```

use std::io::{BufRead, Write};

use logres::lang::analyze::{render_all_human, render_all_json};
use logres::lang::{analyze_program, parse_program, Diagnostic, Severity};
use logres::repl::{Repl, Step};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check") {
        std::process::exit(run_check(&args[1..]));
    }

    let mut repl = Repl::new();
    println!("LOGRES — deductive object-oriented database (SIGMOD 1990 reproduction)");
    println!("type :help for commands, :quit to leave");

    if let Some(path) = args.first() {
        match repl.feed(&format!(":load {path}")) {
            Step::Output(msg) => println!("{msg}"),
            Step::Quit => return,
        }
    }

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        let prompt = if repl.pending() { "... " } else { "lgr> " };
        print!("{prompt}");
        std::io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else {
            break;
        };
        match repl.feed(&line) {
            Step::Output(msg) => {
                if !msg.is_empty() {
                    println!("{}", msg.trim_end());
                }
            }
            Step::Quit => break,
        }
    }
}

const CHECK_USAGE: &str =
    "usage: logres check <file> [--json] [--deny-warnings] [--flow] [--plan] [--explain]";

/// The `check` front-end: parse (or restore) the module, run the analyzer,
/// render every diagnostic, and map the findings to an exit code the way
/// rustc does — errors always fail, warnings fail only under
/// `--deny-warnings`.
fn run_check(args: &[String]) -> i32 {
    let mut json = false;
    let mut deny_warnings = false;
    let mut flow = false;
    let mut plan = false;
    let mut explain = false;
    let mut path: Option<&str> = None;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--flow" => flow = true,
            "--plan" => plan = true,
            "--explain" => explain = true,
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n{CHECK_USAGE}");
                return 2;
            }
            p if path.is_none() => path = Some(p),
            extra => {
                eprintln!("unexpected argument `{extra}`\n{CHECK_USAGE}");
                return 2;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{CHECK_USAGE}");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return 2;
        }
    };

    // A saved state is analyzed through the database (its EDB set comes
    // from the live extensions); a program is analyzed as written. Parse
    // and restore failures flow through the same diagnostics renderer as
    // `E000` so front-ends see one format either way.
    let is_state = text.trim_start().starts_with("%%logres-state");
    let mut parsed: Option<logres::lang::Program> = None;
    let mut diags: Vec<Diagnostic> = if is_state {
        match logres::Database::load(&text) {
            Ok(db) => {
                let mut diags = db.check();
                if flow {
                    diags.extend(db.check_flow());
                }
                diags
            }
            Err(e) => {
                eprintln!("error restoring {path}: {e}");
                return 2;
            }
        }
    } else {
        match parse_program(&text) {
            Ok(program) => {
                let mut diags = analyze_program(&program);
                // The flow pass assumes a well-typed program: only run it
                // when the base checks found no errors.
                if flow && !diags.iter().any(|d| d.severity == Severity::Error) {
                    diags.extend(logres::lang::analyze::flow_program(&program));
                }
                parsed = Some(program);
                diags
            }
            Err(errs) => errs
                .into_iter()
                .map(|e| Diagnostic::error("E000", e.span, e.message))
                .collect(),
        }
    };
    logres::lang::analyze::sort_diagnostics(&mut diags);

    if json {
        print!("{}", render_all_json(&diags));
    } else {
        // Spans in a restored state point into the persisted rules
        // section, not the file as a whole, so the caret excerpt is only
        // shown for program sources.
        let source = if is_state { None } else { Some(text.as_str()) };
        print!("{}", render_all_human(&diags, source));
    }
    if plan {
        match parsed
            .as_ref()
            .and_then(|p| p.goal.as_ref().map(|g| (p, g)))
        {
            Some((p, g)) => print!(
                "{}",
                logres::lang::analyze::plan_goal(&p.schema, &p.rules, g).render(&p.rules)
            ),
            None => println!("no goal: nothing to plan"),
        }
    }
    if explain {
        // EXPLAIN: the compiled ALGRES operator trees of the program's
        // rules (deterministic, so `--json` output is golden-pinnable).
        match &parsed {
            Some(p) => {
                // With `--flow`, the compiled plans consume the analyzer's
                // summaries: statically-empty rules are pruned, joins are
                // reordered by cardinality band, and total semijoin guards
                // are skipped — all visible in the rendered output.
                let summaries = flow.then(|| {
                    let seeds = logres::lang::analyze::seeds_from_facts(&p.schema, &p.facts);
                    logres::lang::analyze::infer(&p.schema, &p.rules, &seeds)
                });
                match logres::engine::compile_program_with(
                    &p.schema,
                    &p.rules,
                    logres::Semantics::default(),
                    summaries.as_ref(),
                ) {
                    Ok(program) if json => {
                        print!(
                            "{}",
                            logres::engine::render_program_json(&program, &p.rules)
                        )
                    }
                    Ok(program) => {
                        print!("{}", logres::engine::render_program(&program, &p.rules))
                    }
                    Err(u) => print!("{}", logres::engine::render_unsupported(&u)),
                }
            }
            None => println!("no program: nothing to explain"),
        }
    }
    let errors = diags.iter().any(|d| d.severity == Severity::Error);
    let warnings = diags.iter().any(|d| d.severity == Severity::Warning);
    if errors || (warnings && deny_warnings) {
        1
    } else {
        0
    }
}
