//! The LOGRES interactive shell.
//!
//! ```text
//! cargo run -p logres --bin logres            # fresh session
//! cargo run -p logres --bin logres -- db.lgr  # load a program or state
//! ```

use std::io::{BufRead, Write};

use logres::repl::{Repl, Step};

fn main() {
    let mut repl = Repl::new();
    println!("LOGRES — deductive object-oriented database (SIGMOD 1990 reproduction)");
    println!("type :help for commands, :quit to leave");

    if let Some(path) = std::env::args().nth(1) {
        match repl.feed(&format!(":load {path}")) {
            Step::Output(msg) => println!("{msg}"),
            Step::Quit => return,
        }
    }

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        let prompt = if repl.pending() { "... " } else { "lgr> " };
        print!("{prompt}");
        std::io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else {
            break;
        };
        match repl.feed(&line) {
            Step::Output(msg) => {
                if !msg.is_empty() {
                    println!("{}", msg.trim_end());
                }
            }
            Step::Quit => break,
        }
    }
}
