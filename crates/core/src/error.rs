//! Errors of the LOGRES facade.

use std::fmt;

use logres_engine::EngineError;
use logres_lang::LangError;
use logres_model::ModelError;

use crate::module::Mode;

/// Anything that can go wrong while building databases, parsing modules, or
/// applying them.
#[derive(Debug, Clone, PartialEq)]
// Field names are self-documenting; variant docs carry the semantics.
#[allow(missing_docs)]
pub enum CoreError {
    /// Front-end diagnostics (parse / type / safety errors).
    Lang(Vec<LangError>),
    /// Schema or instance legality violations.
    Model(Vec<ModelError>),
    /// Evaluation failure.
    Engine(EngineError),
    /// A module application was rejected because the resulting state is
    /// inconsistent (Section 4.1: "Otherwise the update is rejected since
    /// the new instance is undefined"). The database state is unchanged.
    Rejected { violations: Vec<String> },
    /// A goal was supplied with a data-variant application mode (the last
    /// three options provide no goal answer — Section 4.1).
    GoalNotAllowed(Mode),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Lang(errs) => {
                writeln!(f, "language errors:")?;
                for e in errs {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
            CoreError::Model(errs) => {
                writeln!(f, "model errors:")?;
                for e in errs {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
            CoreError::Engine(e) => write!(f, "evaluation error: {e}"),
            CoreError::Rejected { violations } => {
                writeln!(f, "module application rejected; violations:")?;
                for v in violations {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
            CoreError::GoalNotAllowed(mode) => {
                write!(
                    f,
                    "mode {mode:?} is data-variant: the module must not specify a goal"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<Vec<LangError>> for CoreError {
    fn from(e: Vec<LangError>) -> Self {
        CoreError::Lang(e)
    }
}

impl From<Vec<ModelError>> for CoreError {
    fn from(e: Vec<ModelError>) -> Self {
        CoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_nested_diagnostics() {
        let e = CoreError::Rejected {
            violations: vec!["a".into(), "b".into()],
        };
        let s = e.to_string();
        assert!(s.contains("rejected") && s.contains("a") && s.contains("b"));
    }
}
