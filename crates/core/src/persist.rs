//! Textual persistence for database states.
//!
//! The paper's prototype ran on a main-memory environment (ALGRES); a
//! persistent LOGRES still needs to park states on disk between sessions.
//! [`save`] serializes a [`DatabaseState`] `(E, R, S)` — schema, persistent
//! rules and constraints, and the full extensional instance *including
//! oids* — into a line-oriented text format; [`load`] restores it exactly
//! (a strict round-trip, unlike re-loading through a `facts` section, which
//! would re-invent oids and cannot express object references).
//!
//! Format:
//!
//! ```text
//! %%logres-state v1
//! %%schema        — the schema printed in the source grammar
//! %%program       — `rules` / `constraints` sections in the source grammar
//! %%instance      — one fact per line, tab-separated:
//!     pi  <class> <oid>
//!     nu  <oid>   <o-value>
//!     rho <assoc> <tuple>
//!     fun <name>  <args-as-sequence> <element>
//! ```

use logres_model::{parse_value, Instance, Oid, Sym, Value};
use rustc_hash::FxHashSet;

use crate::error::CoreError;
use crate::state::DatabaseState;

const HEADER: &str = "%%logres-state v1";

/// Serialize a state to text.
pub fn save(state: &DatabaseState) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push_str("\n%%schema\n");
    out.push_str(&state.schema.to_string());
    // An empty schema prints as "" and a custom Display may omit the final
    // newline; guard it so the next section header always starts a line.
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("%%program\n");
    if !state.rules.is_empty() {
        out.push_str("rules\n");
        out.push_str(&state.rules.to_string());
    }
    if !state.constraints.is_empty() {
        out.push_str("constraints\n");
        for d in &state.constraints {
            out.push_str(&format!("  {d}\n"));
        }
    }
    out.push_str("%%instance\n");

    // π: memberships per class (sorted for determinism).
    let mut classes: Vec<Sym> = state.schema.classes().collect();
    classes.sort();
    let mut oids_seen: FxHashSet<Oid> = FxHashSet::default();
    for c in &classes {
        let mut oids: Vec<Oid> = state.edb.oids_of(*c).collect();
        oids.sort();
        for o in oids {
            out.push_str(&format!("pi\t{c}\t{}\n", o.0));
            oids_seen.insert(o);
        }
    }
    // ν: one o-value per oid (sorted, so the set iteration order is
    // irrelevant and the output stays canonical).
    let mut oids_seen: Vec<Oid> = oids_seen.into_iter().collect();
    oids_seen.sort();
    let oid_count = oids_seen.len();
    for o in oids_seen {
        if let Some(v) = state.edb.o_value(o) {
            out.push_str(&format!("nu\t{}\t{v}\n", o.0));
        }
    }
    // ρ: association tuples.
    let mut assocs: Vec<Sym> = state.schema.assocs().collect();
    assocs.sort();
    for a in assocs {
        let mut tuples: Vec<&Value> = state.edb.tuples_of(a).collect();
        tuples.sort();
        for t in tuples {
            out.push_str(&format!("rho\t{a}\t{t}\n"));
        }
    }
    // Data-function extensions.
    let mut funs: Vec<Sym> = state.schema.functions_iter().map(|(n, _)| n).collect();
    funs.sort();
    for f in funs {
        let mut args_list: Vec<Vec<Value>> = state.edb.fun_args(f).cloned().collect();
        args_list.sort();
        for args in args_list {
            let set = state.edb.fun_value(f, &args);
            for elem in set.elements().unwrap_or_default() {
                out.push_str(&format!(
                    "fun\t{f}\t{}\t{elem}\n",
                    Value::seq(args.iter().cloned())
                ));
            }
        }
    }
    // Observability: persistence volume lands on the process-wide registry
    // (there is no per-evaluation registry in scope during a save).
    let registry = logres_engine::MetricsRegistry::global();
    registry
        .counter("logres_persist_bytes_total")
        .add(out.len() as u64);
    registry
        .counter("logres_persist_oids_total")
        .add(oid_count as u64);
    out
}

/// Restore a state from text produced by [`save`].
pub fn load(text: &str) -> Result<DatabaseState, CoreError> {
    let err =
        |msg: String| CoreError::Lang(vec![logres_lang::LangError::new(Default::default(), msg)]);
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(HEADER) {
        return Err(err(format!("missing `{HEADER}` header")));
    }

    // Split into the three sections.
    let mut schema_src = String::new();
    let mut program_src = String::new();
    let mut instance_lines: Vec<&str> = Vec::new();
    let mut section = "";
    for line in lines {
        match line.trim() {
            "%%schema" if section.is_empty() => section = "schema",
            "%%program" if section == "schema" => section = "program",
            "%%instance" if section == "program" => section = "instance",
            s if s.starts_with("%%") => {
                // A corrupted, repeated, or out-of-order section header must
                // be a hard error: silently treating it as content would
                // misparse everything after it.
                return Err(err(format!(
                    "malformed or out-of-order section header {s:?} \
                     (expected %%schema, %%program, %%instance, in order)"
                )));
            }
            _ => match section {
                "schema" => {
                    schema_src.push_str(line);
                    schema_src.push('\n');
                }
                "program" => {
                    program_src.push_str(line);
                    program_src.push('\n');
                }
                "instance" => {
                    if !line.trim().is_empty() {
                        instance_lines.push(line);
                    }
                }
                _ => return Err(err(format!("content before any section: {line:?}"))),
            },
        }
    }

    if section != "instance" {
        return Err(err(format!(
            "truncated state: expected %%schema, %%program and %%instance \
             sections, got as far as {:?}",
            if section.is_empty() {
                "<header>"
            } else {
                section
            }
        )));
    }

    let schema_program = logres_lang::parse_program(&schema_src).map_err(CoreError::Lang)?;
    let schema = schema_program.schema;
    let program = logres_lang::parse_rules(&program_src, &schema).map_err(CoreError::Lang)?;

    let mut edb = Instance::new();
    // Two passes: collect ν first so that π insertions carry complete
    // o-values.
    let mut nu: rustc_hash::FxHashMap<u64, Value> = rustc_hash::FxHashMap::default();
    for line in &instance_lines {
        let mut parts = line.splitn(3, '\t');
        if parts.next() != Some("nu") {
            continue;
        }
        let oid: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(format!("bad nu line: {line:?}")))?;
        let value = parse_value(parts.next().unwrap_or_default())
            .map_err(|e| err(format!("bad nu value: {e}")))?;
        nu.insert(oid, value);
    }
    for line in &instance_lines {
        let mut parts = line.splitn(3, '\t');
        let kind = parts.next().unwrap_or_default();
        match kind {
            "nu" => {}
            "pi" => {
                let class = Sym::new(
                    parts
                        .next()
                        .ok_or_else(|| err(format!("bad pi line: {line:?}")))?,
                );
                let oid: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(format!("bad pi line: {line:?}")))?;
                let value = nu
                    .get(&oid)
                    .cloned()
                    .unwrap_or_else(|| Value::Tuple(vec![]));
                edb.insert_object(&schema, class, Oid(oid), value);
            }
            "rho" => {
                let assoc = Sym::new(
                    parts
                        .next()
                        .ok_or_else(|| err(format!("bad rho line: {line:?}")))?,
                );
                let tuple = parse_value(parts.next().unwrap_or_default())
                    .map_err(|e| err(format!("bad rho value: {e}")))?;
                edb.insert_assoc(assoc, tuple);
            }
            "fun" => {
                let mut parts = line.splitn(4, '\t');
                parts.next(); // "fun"
                let fun = Sym::new(
                    parts
                        .next()
                        .ok_or_else(|| err(format!("bad fun line: {line:?}")))?,
                );
                let args = parse_value(parts.next().unwrap_or_default())
                    .map_err(|e| err(format!("bad fun args: {e}")))?;
                let elem = parse_value(parts.next().unwrap_or_default())
                    .map_err(|e| err(format!("bad fun elem: {e}")))?;
                let Value::Seq(args) = args else {
                    return Err(err(format!("fun args must be a sequence: {line:?}")));
                };
                edb.insert_member(fun, args, elem);
            }
            other => return Err(err(format!("unknown instance line kind `{other}`"))),
        }
    }

    Ok(DatabaseState {
        schema,
        rules: program.rules,
        edb,
        constraints: program.constraints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Database, Mode};

    fn demo_db() -> Database {
        let mut db = Database::from_source(
            r#"
            classes
              player = (name: string, roles: {integer});
              team   = (team_name: string, base_players: <player>);
            associations
              game = (h: team, g: team, score: (home: integer, guest: integer));
            functions
              fans: string -> {string};
            rules
              game(h: X, g: X, score: (home: 0, guest: 0)) <- team(X), 1 = 2.
            constraints
              <- game(h: X, g: X).
            "#,
        )
        .unwrap();
        db.apply_source(
            r#"
            rules
              player(self: P, name: "pele", roles: {9, 10}) <- .
              player(self: P, name: "banks", roles: {1}) <- .
              team(self: T, team_name: "brazil", base_players: <B>)
                <- player(B, name: "pele").
              team(self: T, team_name: "england", base_players: <B>)
                <- player(B, name: "banks").
              game(h: H, g: G, score: (home: 1, guest: 0))
                <- team(H, team_name: "brazil"), team(G, team_name: "england").
              member("maria", fans("pele")) <- .
            "#,
            Mode::Ridv,
        )
        .unwrap();
        db
    }

    #[test]
    fn save_accounts_volume_on_the_global_registry() {
        // The global registry is shared process-wide (other tests may also
        // save), so assert on deltas, not absolute values.
        let registry = logres_engine::MetricsRegistry::global();
        let bytes = registry.counter("logres_persist_bytes_total");
        let oids = registry.counter("logres_persist_oids_total");
        let (b0, o0) = (bytes.get(), oids.get());
        let db = demo_db();
        let text = save(db.state());
        assert!(bytes.get() >= b0 + text.len() as u64);
        // demo_db invents player/team oids; all of them are serialised.
        assert!(oids.get() >= o0 + 4);
    }

    #[test]
    fn save_load_round_trips_the_full_state() {
        let db = demo_db();
        let text = save(db.state());
        let restored = load(&text).expect("state loads");
        // Same schema, rules, constraints (by printed form).
        assert_eq!(restored.schema.to_string(), db.state().schema.to_string());
        assert_eq!(restored.rules, db.state().rules);
        assert_eq!(restored.constraints, db.state().constraints);
        // The instance round-trips exactly — including oids and function
        // extensions.
        assert_eq!(&restored.edb, db.edb());
        // And saving again is byte-identical (canonical form).
        assert_eq!(save(&restored), text);
    }

    #[test]
    fn loaded_state_keeps_answering_queries() {
        let db = demo_db();
        let text = save(db.state());
        let state = load(&text).unwrap();
        let mut db2 = Database::from_state(state);
        let rows = db2
            .query(r#"goal team(team_name: N, base_players: Q), player(self: P, name: PN), member(P, Q)?"#)
            .unwrap();
        assert_eq!(rows.len(), 2);
        let fans = db2.query(r#"goal member(F, fans("pele"))?"#).unwrap();
        assert_eq!(fans.len(), 1);
    }

    #[test]
    fn corrupted_inputs_are_rejected() {
        assert!(load("not a state").is_err());
        assert!(load("%%logres-state v1\n%%instance\nbogus\tline\n").is_err());
        let db = demo_db();
        let text = save(db.state());
        let broken = text.replace("rho\tgame", "rho\tnosuch");
        // Unknown association: tolerated at instance level (schema checks
        // happen at validation time), so loading succeeds…
        let loaded = load(&broken);
        assert!(loaded.is_ok());
        // …but a truncated value line is a parse error.
        let broken2 = text.replace("nu\t0\t", "nu\t0\t(((");
        assert!(load(&broken2).is_err());
    }

    #[test]
    fn malformed_section_headers_are_rejected() {
        let db = demo_db();
        let text = save(db.state());
        // A typo'd section header is a hard error, not silent content.
        let typo = text.replace("%%program", "%%prog");
        assert!(load(&typo).is_err());
        // Out-of-order sections are rejected.
        assert!(load("%%logres-state v1\n%%instance\n").is_err());
        // Repeated sections are rejected.
        let doubled = text.replace("%%instance\n", "%%schema\n%%instance\n");
        assert!(load(&doubled).is_err());
        // Truncated states (missing sections) are rejected.
        assert!(load("%%logres-state v1\n").is_err());
        assert!(load("%%logres-state v1\n%%schema\n").is_err());
    }

    #[test]
    fn empty_schema_keeps_section_headers_on_their_own_lines() {
        // Regression: `save` relied on the schema's Display ending with a
        // newline — an empty schema glued `%%program` onto the previous
        // line and corrupted the format.
        let state = DatabaseState::new(logres_model::Schema::new());
        let text = save(&state);
        assert!(text.lines().any(|l| l == "%%program"), "text: {text:?}");
        let restored = load(&text).expect("empty state loads");
        assert_eq!(save(&restored), text);
    }
}
