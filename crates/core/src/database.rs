//! The LOGRES database facade: owns a state `(E, R, S)` and applies modules
//! under the six modes of Section 4.1.
//!
//! "The evolution of a LOGRES database is obtained through sequences of
//! applications of update modules to existing LOGRES database states."
//! Modes of application also select the semantics given to rules —
//! "LOGRES modules and databases are parametric with respect to the
//! semantics of the rules they support" — so every application may override
//! the database's default semantics.

use std::sync::Arc;

use logres_engine::{
    answer_goal, evaluate, load_facts, maintain, Derivation, EvalOptions, EvalReport,
    MetricsRegistry, Semantics,
};
use logres_lang::{parse_program, AnalysisInput, Atom, Diagnostic, Rule, RuleSet};
use logres_model::{
    integrity, Fact, Instance, IntegrityConstraint, Oid, PredKind, Schema, Sym, Value,
};
use rustc_hash::{FxHashMap, FxHashSet};

use crate::error::CoreError;
use crate::module::{Mode, Module};
use crate::state::DatabaseState;

/// Goal answers: one row per result, binding the goal variables in order.
pub type Rows = Vec<Vec<(Sym, Value)>>;

/// What a module application produced.
#[derive(Debug, Clone)]
pub struct ApplicationOutcome {
    /// The goal answer, for goal-answering modes with a goal.
    pub answer: Option<Rows>,
    /// Evaluation statistics.
    pub report: EvalReport,
}

/// A LOGRES database.
#[derive(Debug, Clone)]
pub struct Database {
    state: DatabaseState,
    semantics: Semantics,
    opts: EvalOptions,
    /// Materialized instance plus support graph for incremental
    /// maintenance of the data-variant modes; built lazily on the first
    /// maintainable update and invalidated whenever the state changes
    /// through any other path.
    view: Option<maintain::MaterializedView>,
    incremental: bool,
    /// Parsed-module cache for [`Database::apply_source`]: parsing and
    /// static checking run against the current schema, so the cache is
    /// cleared whenever an applied module carries schema equations of its
    /// own (the only way `S` changes between applications). Bounded; the
    /// common repeat-the-same-update workload (benchmark E5) parses once.
    parse_cache: FxHashMap<String, Arc<Module>>,
}

impl Database {
    /// An empty database over a validated schema.
    pub fn new(schema: Schema) -> Database {
        Database {
            state: DatabaseState::new(schema),
            semantics: Semantics::default(),
            opts: EvalOptions::default(),
            view: None,
            incremental: true,
            parse_cache: FxHashMap::default(),
        }
    }

    /// Bootstrap a database from a program text: schema sections define
    /// `S`, the facts section loads `E`, rule/constraint sections seed the
    /// persistent `R`.
    pub fn from_source(src: &str) -> Result<Database, CoreError> {
        let program = parse_program(src).map_err(CoreError::Lang)?;
        logres_lang::check_program(&program).map_err(CoreError::Lang)?;
        let mut edb = Instance::new();
        let mut gen = logres_model::OidGen::new();
        load_facts(&program.schema, &mut edb, &program.facts, &mut gen)
            .map_err(CoreError::Engine)?;
        Ok(Database {
            state: DatabaseState {
                schema: program.schema,
                rules: program.rules,
                edb,
                constraints: program.constraints,
            },
            semantics: Semantics::default(),
            opts: EvalOptions::default(),
            view: None,
            incremental: true,
            parse_cache: FxHashMap::default(),
        })
    }

    /// Wrap an existing state (e.g. one restored by [`crate::persist::load`]).
    pub fn from_state(state: DatabaseState) -> Database {
        Database {
            state,
            semantics: Semantics::default(),
            opts: EvalOptions::default(),
            view: None,
            incremental: true,
            parse_cache: FxHashMap::default(),
        }
    }

    /// The current persistent state.
    pub fn state(&self) -> &DatabaseState {
        &self.state
    }

    /// Serialize the full state `(E, R, S)` to text (see [`crate::persist`]).
    pub fn save(&self) -> String {
        crate::persist::save(&self.state)
    }

    /// Restore a database from [`Database::save`] output.
    pub fn load(text: &str) -> Result<Database, CoreError> {
        Ok(Database::from_state(crate::persist::load(text)?))
    }

    /// The schema `S`.
    pub fn schema(&self) -> &Schema {
        &self.state.schema
    }

    /// The extensional database `E`.
    pub fn edb(&self) -> &Instance {
        &self.state.edb
    }

    /// The persistent rules `R`.
    pub fn rules(&self) -> &RuleSet {
        &self.state.rules
    }

    /// Default semantics for rule evaluation.
    pub fn set_semantics(&mut self, semantics: Semantics) {
        self.semantics = semantics;
    }

    /// Fuel limits, governor budgets, and trace sink for evaluations.
    pub fn set_options(&mut self, opts: EvalOptions) {
        self.opts = opts;
    }

    /// Enable or disable incremental maintenance of the data-variant modes
    /// (on by default). When disabled, every RIDV/RADV/RDDV application
    /// takes the full-rederivation path; disabling also drops the
    /// materialized view.
    pub fn set_incremental(&mut self, incremental: bool) {
        self.incremental = incremental;
        if !incremental {
            self.view = None;
        }
    }

    /// The database's current evaluation options.
    pub fn options(&self) -> &EvalOptions {
        &self.opts
    }

    /// Attach a dedicated metrics registry to this database (idempotent)
    /// and return it. Every subsequent evaluation — queries, module
    /// applications, materialization — records its counters, gauges, and
    /// histograms there instead of only the process-wide registry.
    pub fn enable_metrics(&mut self) -> Arc<MetricsRegistry> {
        if self.opts.metrics.is_none() {
            self.opts.metrics = Some(Arc::new(MetricsRegistry::new()));
        }
        self.opts
            .metrics
            .clone()
            .expect("metrics registry was just attached")
    }

    /// Render the database's metrics in Prometheus text exposition format.
    /// Falls back to the process-wide registry when
    /// [`Database::enable_metrics`] was never called.
    pub fn metrics(&self) -> String {
        match &self.opts.metrics {
            Some(registry) => registry.render_text(),
            None => MetricsRegistry::global().render_text(),
        }
    }

    /// Run the whole-program static analyzer over the persistent state
    /// `(E, R, S)`: the Section 3.1 error checks (typing, safety) plus the
    /// `L001`–`L007` lint pass, computed on one shared dependency graph.
    /// A predicate or data function counts as extensionally defined when
    /// its stored extension in `E` is non-empty. When metrics are enabled
    /// ([`Database::enable_metrics`]), each diagnostic bumps
    /// `logres_check_diagnostics_total{code=...}`.
    pub fn check(&self) -> Vec<Diagnostic> {
        let state = &self.state;
        let mut edb: FxHashSet<Sym> = FxHashSet::default();
        for class in state.schema.classes() {
            if state.edb.class_len(class) > 0 {
                edb.insert(class);
            }
        }
        for assoc in state.schema.assocs() {
            if state.edb.assoc_len(assoc) > 0 {
                edb.insert(assoc);
            }
        }
        for (fun, _) in state.schema.functions_iter() {
            if state.edb.fun_args(fun).next().is_some() {
                edb.insert(fun);
            }
        }
        let diags = logres_lang::analyze::analyze(&AnalysisInput {
            schema: &state.schema,
            rules: &state.rules,
            constraints: &state.constraints,
            goal: None,
            edb,
        });
        if let Some(registry) = &self.opts.metrics {
            for d in &diags {
                registry
                    .counter_with("logres_check_diagnostics_total", "code", d.code)
                    .inc();
            }
        }
        diags
    }

    /// The opt-in abstract-interpretation flow pass (`L008`–`L011`) over the
    /// persistent state: whole-program value inference seeded from the
    /// stored extensions in `E`. Kept separate from [`Database::check`] so
    /// the default check's output stays stable; callers append these and
    /// re-sort with `sort_diagnostics`.
    pub fn check_flow(&self) -> Vec<Diagnostic> {
        let state = &self.state;
        let seeds = logres_lang::analyze::seeds_from_instance(&state.schema, &state.edb);
        let diags = logres_lang::analyze::infer(&state.schema, &state.rules, &seeds)
            .diagnostics(&state.rules);
        if let Some(registry) = &self.opts.metrics {
            for d in &diags {
                registry
                    .counter_with("logres_check_diagnostics_total", "code", d.code)
                    .inc();
            }
        }
        diags
    }

    /// Explain how `fact` enters the database instance: re-evaluate with
    /// provenance recording on and walk the first derivation of the fact
    /// back to its EDB leaves. `Ok(None)` means the fact is not in the
    /// instance at all; an EDB fact comes back as a leaf derivation.
    pub fn why(&self, fact: &Fact) -> Result<Option<Derivation>, CoreError> {
        let mut opts = self.opts.clone();
        opts.provenance = true;
        let (inst, report) = self
            .state
            .instance(self.semantics, opts)
            .map_err(CoreError::Engine)?;
        if !inst.contains_fact(&self.state.schema, fact) {
            return Ok(None);
        }
        let prov = report.provenance.unwrap_or_default();
        Ok(Some(prov.explain(fact)))
    }

    /// [`Database::why`] over a textual fact such as `tc(a: 1, b: 3)` or
    /// `emp(name: "smith")`, returning the rendered derivation chain (or a
    /// message explaining why there is nothing to show).
    pub fn why_source(&self, fact_src: &str) -> Result<String, CoreError> {
        let mut opts = self.opts.clone();
        opts.provenance = true;
        let (inst, report) = self
            .state
            .instance(self.semantics, opts)
            .map_err(CoreError::Engine)?;
        let Some(fact) = self.resolve_fact_src(fact_src, &inst)? else {
            return Ok(format!(
                "no fact matching `{}` in the instance",
                fact_src.trim()
            ));
        };
        if !inst.contains_fact(&self.state.schema, &fact) {
            return Ok(format!("{fact} is not in the instance"));
        }
        Ok(report
            .provenance
            .unwrap_or_default()
            .explain(&fact)
            .render())
    }

    /// Parse a textual ground fact and resolve it against `inst`. Class
    /// facts name no oid in text form, so the smallest oid whose o-value
    /// agrees on every written attribute is chosen (deterministically).
    fn resolve_fact_src(&self, src: &str, inst: &Instance) -> Result<Option<Fact>, CoreError> {
        let lang_err = |msg: String| {
            CoreError::Lang(vec![logres_lang::LangError::new(Default::default(), msg)])
        };
        let schema = &self.state.schema;
        let trimmed = src.trim().trim_end_matches('.');
        let wrapped = format!("facts\n  {trimmed}.\n");
        let program = logres_lang::parse_rules(&wrapped, schema).map_err(CoreError::Lang)?;
        let Some(gf) = program.facts.first() else {
            return Err(lang_err(format!("expected a ground fact, got `{trimmed}`")));
        };
        match schema.kind(gf.pred) {
            Some(PredKind::Assoc) => Ok(Some(Fact::Assoc {
                assoc: gf.pred,
                tuple: Value::tuple(gf.args.iter().map(|(l, v)| (*l, v.clone()))),
            })),
            Some(PredKind::Class) => {
                let mut oids: Vec<Oid> = inst.oids_of(gf.pred).collect();
                oids.sort();
                for oid in oids {
                    if let Some(view) = inst.o_value_in(schema, gf.pred, oid) {
                        if gf.args.iter().all(|(l, v)| view.field(*l) == Some(v)) {
                            return Ok(Some(Fact::Class {
                                class: gf.pred,
                                oid,
                                value: view,
                            }));
                        }
                    }
                }
                Ok(None)
            }
            _ => Err(lang_err(format!(
                "`{}` is not a class or association of the schema",
                gf.pred
            ))),
        }
    }

    /// The referential integrity constraints generated from the current
    /// type equations (Section 2.1).
    pub fn integrity_constraints(&self) -> Vec<IntegrityConstraint> {
        integrity::generate(&self.state.schema)
    }

    /// Materialize the database instance: compute `I` from `(E, R)`.
    pub fn instance(&self) -> Result<(Instance, EvalReport), CoreError> {
        self.state
            .instance(self.semantics, self.opts.clone())
            .map_err(CoreError::Engine)
    }

    /// Make `E` coincide with the instance `I` (Section 4.2,
    /// "materializing the instance"): `E := I`. The rules stay in place, so
    /// they keep acting as triggers on later updates.
    pub fn materialize(&mut self) -> Result<EvalReport, CoreError> {
        let (inst, report) = self.instance()?;
        self.state.edb = inst;
        self.view = None;
        Ok(report)
    }

    /// Parse and apply a module in one call. Repeated applications of the
    /// same source reuse the parsed (and statically checked) module from a
    /// cache that is invalidated whenever the schema can have changed.
    pub fn apply_source(&mut self, src: &str, mode: Mode) -> Result<ApplicationOutcome, CoreError> {
        let module = match self.parse_cache.get(src) {
            Some(m) => m.clone(),
            None => {
                let m = Arc::new(Module::parse(src, &self.state.schema)?);
                if self.parse_cache.len() >= 64 {
                    self.parse_cache.clear();
                }
                self.parse_cache.insert(src.to_owned(), m.clone());
                m
            }
        };
        self.apply(&module, mode)
    }

    /// Apply a module under the database's default semantics.
    pub fn apply(&mut self, module: &Module, mode: Mode) -> Result<ApplicationOutcome, CoreError> {
        self.apply_with(module, mode, self.semantics)
    }

    /// Does applying this module leave cached source→module parses valid?
    /// Only schema equations can invalidate them: parsing depends on `S`
    /// and nothing else, and `S` changes only when a module carries its own
    /// equations (unioned or differenced in by the persistent modes).
    fn module_carries_schema(module: &Module) -> bool {
        module.schema.classes().next().is_some()
            || module.schema.assocs().next().is_some()
            || module.schema.functions_iter().next().is_some()
    }

    /// Apply a module, overriding the rule semantics for this application.
    pub fn apply_with(
        &mut self,
        module: &Module,
        mode: Mode,
        semantics: Semantics,
    ) -> Result<ApplicationOutcome, CoreError> {
        if module.goal.is_some() && !mode.answers_goal() {
            return Err(CoreError::GoalNotAllowed(mode));
        }
        if mode != Mode::Ridi && Self::module_carries_schema(module) {
            self.parse_cache.clear();
        }

        match mode {
            Mode::Ridi => {
                // Transient: evaluate R ∪ R_M over E with S ∪ S_M; nothing
                // persists.
                let schema = self.union_schema(module)?;
                let rules = self.state.rules.union(&module.rules);
                let (inst, report) = evaluate(
                    &schema,
                    &rules,
                    &self.state.edb,
                    semantics,
                    self.opts.clone(),
                )
                .map_err(CoreError::Engine)?;
                let answer = self.answer(&schema, &inst, module)?;
                Ok(ApplicationOutcome { answer, report })
            }
            Mode::Radi => {
                let schema = self.union_schema(module)?;
                let rules = self.state.rules.union(&module.rules);
                let mut constraints = self.state.constraints.clone();
                for d in &module.constraints {
                    if !constraints.contains(d) {
                        constraints.push(d.clone());
                    }
                }
                let candidate = DatabaseState {
                    schema,
                    rules,
                    edb: self.state.edb.clone(),
                    constraints,
                };
                let (inst, report) = self.check_candidate(&candidate, semantics)?;
                let answer = self.answer(&candidate.schema, &inst, module)?;
                self.state = candidate;
                self.view = None;
                Ok(ApplicationOutcome { answer, report })
            }
            Mode::Rddi => {
                let mut schema = self.state.schema.difference(&module.schema);
                schema.validate().map_err(CoreError::Model)?;
                let rules = self.state.rules.difference(&module.rules);
                let constraints: Vec<_> = self
                    .state
                    .constraints
                    .iter()
                    .filter(|d| !module.constraints.contains(d))
                    .cloned()
                    .collect();
                let candidate = DatabaseState {
                    schema,
                    rules,
                    edb: self.state.edb.clone(),
                    constraints,
                };
                let (inst, report) = self.check_candidate(&candidate, semantics)?;
                let answer = self.answer(&candidate.schema, &inst, module)?;
                self.state = candidate;
                self.view = None;
                Ok(ApplicationOutcome { answer, report })
            }
            Mode::Ridv => {
                if let Some(outcome) = self.try_incremental(module, mode, semantics)? {
                    return Ok(outcome);
                }
                // E' = result of applying the *module* rules to E; the
                // persistent rules are untouched but S gains the module's
                // new type equations (the paper's S_M(EDB)).
                let schema = self.union_schema(module)?;
                let (new_edb, report) = evaluate(
                    &schema,
                    &module.rules,
                    &self.state.edb,
                    semantics,
                    self.opts.clone(),
                )
                .map_err(CoreError::Engine)?;
                let candidate = DatabaseState {
                    schema,
                    rules: self.state.rules.clone(),
                    edb: new_edb,
                    constraints: self.state.constraints.clone(),
                };
                let (_, _) = self.check_candidate(&candidate, semantics)?;
                self.state = candidate;
                self.view = None;
                Ok(ApplicationOutcome {
                    answer: None,
                    report,
                })
            }
            Mode::Radv => {
                if let Some(outcome) = self.try_incremental(module, mode, semantics)? {
                    return Ok(outcome);
                }
                let schema = self.union_schema(module)?;
                let (new_edb, report) = evaluate(
                    &schema,
                    &module.rules,
                    &self.state.edb,
                    semantics,
                    self.opts.clone(),
                )
                .map_err(CoreError::Engine)?;
                let rules = self.state.rules.union(&module.rules);
                let mut constraints = self.state.constraints.clone();
                for d in &module.constraints {
                    if !constraints.contains(d) {
                        constraints.push(d.clone());
                    }
                }
                let candidate = DatabaseState {
                    schema,
                    rules,
                    edb: new_edb,
                    constraints,
                };
                let (_, _) = self.check_candidate(&candidate, semantics)?;
                self.state = candidate;
                self.view = None;
                Ok(ApplicationOutcome {
                    answer: None,
                    report,
                })
            }
            Mode::Rddv => {
                if let Some(outcome) = self.try_incremental(module, mode, semantics)? {
                    return Ok(outcome);
                }
                // E_M = the instance of (∅, R_M); E' = E − E_M.
                let schema = self.union_schema(module)?;
                let (em, report) = evaluate(
                    &schema,
                    &module.rules,
                    &Instance::new(),
                    semantics,
                    self.opts.clone(),
                )
                .map_err(CoreError::Engine)?;
                let mut new_edb = self.state.edb.clone();
                for fact in em.facts(&schema) {
                    new_edb.remove_fact(&schema, &fact);
                }
                let mut new_schema = self.state.schema.difference(&module.schema);
                new_schema.validate().map_err(CoreError::Model)?;
                let rules = self.state.rules.difference(&module.rules);
                let constraints: Vec<_> = self
                    .state
                    .constraints
                    .iter()
                    .filter(|d| !module.constraints.contains(d))
                    .cloned()
                    .collect();
                let candidate = DatabaseState {
                    schema: new_schema,
                    rules,
                    edb: new_edb,
                    constraints,
                };
                let (_, _) = self.check_candidate(&candidate, semantics)?;
                self.state = candidate;
                self.view = None;
                Ok(ApplicationOutcome {
                    answer: None,
                    report,
                })
            }
        }
    }

    /// Serve a data-variant application through the incremental maintenance
    /// engine ([`logres_engine::maintain`]) when the module and the
    /// persistent program lie in the supported fragment.
    ///
    /// `Ok(None)` means the caller must take the full rederivation path;
    /// the reason has already been recorded on the
    /// `logres_maintain_fallbacks_total` metric. `Ok(Some(..))` means the
    /// update was applied and committed incrementally. Rejections and
    /// engine failures leave the persistent state untouched (the stale view
    /// is discarded).
    fn try_incremental(
        &mut self,
        module: &Module,
        mode: Mode,
        semantics: Semantics,
    ) -> Result<Option<ApplicationOutcome>, CoreError> {
        if !self.incremental || module.goal.is_some() {
            return Ok(None);
        }
        macro_rules! fall_back {
            ($reason:expr) => {{
                maintain::note_fallback(&self.opts, $reason);
                return Ok(None);
            }};
        }
        // Module schemas that introduce classes, isa edges, or renamings
        // can retype existing data; keep those on the full path. New
        // associations and domains only extend the schema.
        if module.schema.classes().next().is_some()
            || !module.schema.isa_edges().is_empty()
            || !module.schema.renames().is_empty()
        {
            fall_back!("schema");
        }
        let schema = match mode {
            Mode::Rddv => {
                // RDDV subtracts the module schema; dropping declarations
                // out from under stored data stays on the full path.
                if module.schema.assocs().next().is_some()
                    || module.schema.domains().next().is_some()
                {
                    fall_back!("schema");
                }
                self.state.schema.clone()
            }
            _ => self.union_schema(module)?,
        };
        // The persistent program must be maintainable for the view to
        // exist at all (no oid invention, no data functions, no negation).
        if !maintain::maintainable(&schema, &self.state.rules) {
            fall_back!("fragment");
        }

        let (ground, nonground): (Vec<&Rule>, Vec<&Rule>) = module
            .rules
            .rules
            .iter()
            .partition(|r| maintain::is_ground_batch_rule(&schema, r));

        let mut spec = maintain::UpdateSpec::default();
        let mut rules = self.state.rules.clone();
        let mut constraints = self.state.constraints.clone();
        // Profile entries for the module's own (transient) rules, merged
        // into the synthesized report so `:profile` covers them.
        let mut module_profiles: Vec<logres_engine::RuleProfile> = Vec::new();
        match mode {
            Mode::Ridv => {
                if !nonground.is_empty() {
                    fall_back!("nonground-rule");
                }
                let effect = match maintain::apply_batch(&schema, &ground, &self.state.edb) {
                    Ok(e) => e,
                    Err(_) => fall_back!("batch"),
                };
                let deleting: Vec<&Rule> =
                    ground.iter().copied().filter(|r| r.head.negated).collect();
                match maintain::batch_conflicts(&schema, &deleting, &effect) {
                    Ok(false) => {}
                    // A batch that inserts and deletes the same fact does
                    // not reach a one-step fixpoint; let the full path
                    // produce its verdict.
                    _ => fall_back!("conflict"),
                }
                spec.inserts = effect.inserted;
                spec.deletes = effect.deleted;
                module_profiles = effect.profiles;
            }
            Mode::Radv => {
                if module.rules.rules.iter().any(|r| r.head.negated) {
                    fall_back!("deleting-rule");
                }
                rules = self.state.rules.union(&module.rules);
                if !maintain::maintainable(&schema, &rules) {
                    fall_back!("fragment");
                }
                spec.inserts = if nonground.is_empty() {
                    match maintain::apply_batch(&schema, &ground, &self.state.edb) {
                        Ok(e) => {
                            module_profiles = e.profiles;
                            e.inserted
                        }
                        Err(_) => fall_back!("batch"),
                    }
                } else {
                    // The module's EDB effect is the same evaluation the
                    // full path performs first; the saving is skipping the
                    // candidate's full rederivation afterwards.
                    let evaluated = evaluate(
                        &schema,
                        &module.rules,
                        &self.state.edb,
                        semantics,
                        self.opts.clone(),
                    );
                    let (new_edb, eval_report) = match evaluated {
                        Ok(r) => r,
                        Err(_) => fall_back!("batch"),
                    };
                    module_profiles = eval_report.rule_profiles;
                    new_edb
                        .facts(&schema)
                        .into_iter()
                        .filter(|f| !self.state.edb.contains_fact(&schema, f))
                        .collect()
                };
                spec.add_rules = module.rules.rules.clone();
                for d in &module.constraints {
                    if !constraints.contains(d) {
                        constraints.push(d.clone());
                    }
                }
            }
            Mode::Rddv => {
                let inserts: Vec<&Rule> =
                    ground.iter().copied().filter(|r| !r.head.negated).collect();
                let em_inserted = if inserts.is_empty() {
                    // E_M = ∅ only if no module rule can ever fire over the
                    // empty instance: require a positive stored-predicate
                    // literal in every non-ground body.
                    for r in &nonground {
                        let anchored = r
                            .body
                            .iter()
                            .any(|l| !l.negated && matches!(&l.atom, Atom::Pred { .. }));
                        if !anchored {
                            fall_back!("em-unsafe");
                        }
                    }
                    Vec::new()
                } else {
                    // Ground insertions feeding other rules (or fighting
                    // ground deletions) make E_M hard to bound; punt.
                    if !nonground.is_empty() || inserts.len() != ground.len() {
                        fall_back!("mixed");
                    }
                    match maintain::apply_batch(&schema, &inserts, &Instance::new()) {
                        Ok(e) => {
                            module_profiles = e.profiles;
                            e.inserted
                        }
                        Err(_) => fall_back!("batch"),
                    }
                };
                spec.deletes = em_inserted
                    .into_iter()
                    .filter(|f| self.state.edb.contains_fact(&schema, f))
                    .collect();
                spec.remove_rules = module
                    .rules
                    .rules
                    .iter()
                    .filter(|r| rules.rules.contains(r))
                    .cloned()
                    .collect();
                rules = self.state.rules.difference(&module.rules);
                constraints.retain(|d| !module.constraints.contains(d));
            }
            _ => return Ok(None),
        }

        if self.view.is_none() {
            // The initial materialization is internal bookkeeping, not a
            // user-visible evaluation: keep it out of the trace stream.
            let mut build_opts = self.opts.clone();
            build_opts.trace = None;
            let built = maintain::MaterializedView::build(
                &schema,
                &self.state.rules,
                &self.state.edb,
                &build_opts,
            );
            let (view, _) = match built {
                Ok(v) => v,
                Err(_) => fall_back!("build"),
            };
            // The delta consistency check assumes a consistent base.
            if !self
                .state
                .check_consistency(view.instance())?
                .is_consistent()
            {
                fall_back!("base-inconsistent");
            }
            self.view = Some(view);
        }

        let mut view = self.view.take().expect("view was just ensured");
        let mut result =
            match maintain::apply_update(&schema, &mut view, &spec, &self.state.edb, &self.opts) {
                Ok(r) => r,
                Err(e) => return Err(CoreError::Engine(e)),
            };
        if !module_profiles.is_empty() {
            module_profiles.append(&mut result.report.rule_profiles);
            result.report.rule_profiles = module_profiles;
        }
        let candidate = DatabaseState {
            schema,
            rules,
            edb: Instance::new(),
            constraints,
        };
        let consistency = candidate.check_consistency_delta(view.instance(), &result.added)?;
        if !consistency.is_consistent() {
            // Atomic rejection: the persistent state is untouched and the
            // mutated view is discarded.
            return Err(CoreError::Rejected {
                violations: consistency.violations,
            });
        }
        for f in &spec.deletes {
            self.state.edb.remove_fact(&candidate.schema, f);
        }
        for f in &spec.inserts {
            self.state.edb.insert_fact(&candidate.schema, f);
        }
        self.state.schema = candidate.schema;
        self.state.rules = candidate.rules;
        self.state.constraints = candidate.constraints;
        self.view = Some(view);
        Ok(Some(ApplicationOutcome {
            answer: None,
            report: result.report,
        }))
    }

    /// Evaluate a goal-only module (convenience for queries). Goals whose
    /// plan admits the magic-set rewrite are answered demand-first over the
    /// partial instance (bit-identical answers, see
    /// [`logres_engine::magic`]); every other goal falls back to a full
    /// transient (RIDI) application.
    pub fn query(&mut self, src: &str) -> Result<Rows, CoreError> {
        Ok(self.query_report(src)?.0)
    }

    /// [`Database::query`], also returning the evaluation report. Both the
    /// demand path and the full RIDI fallback report through the same
    /// [`EvalReport`] shape, so `:profile` and EXPLAIN ANALYZE see per-rule
    /// (and, with [`EvalOptions::profile`], per-operator) statistics
    /// whichever path answered.
    pub fn query_report(&mut self, src: &str) -> Result<(Rows, EvalReport), CoreError> {
        let module = Module::parse(src, &self.state.schema)?;
        if let Some((rows, report)) = self.try_demand_answer(&module)? {
            return Ok((rows, report));
        }
        let outcome = self.apply(&module, Mode::Ridi)?;
        Ok((outcome.answer.unwrap_or_default(), outcome.report))
    }

    /// [`Database::query`] under one-off evaluation options (deadline,
    /// budgets, trace sink, thread count) without disturbing the database's
    /// defaults; returns the rows together with the evaluation report so
    /// callers can inspect profiles and budget consumption.
    pub fn query_with_options(
        &mut self,
        src: &str,
        opts: EvalOptions,
    ) -> Result<(Rows, EvalReport), CoreError> {
        let saved = std::mem::replace(&mut self.opts, opts);
        let result = (|| {
            let module = Module::parse(src, &self.state.schema)?;
            if let Some((rows, report)) = self.try_demand_answer(&module)? {
                return Ok((rows, report));
            }
            let outcome = self.apply(&module, Mode::Ridi)?;
            Ok((outcome.answer.unwrap_or_default(), outcome.report))
        })();
        self.opts = saved;
        result
    }

    /// Render the goal-directed evaluation plan for a query — adornments,
    /// demand predicates, the rewritten rules, or the reason (and exempt
    /// rules) for falling back to the full fixpoint — without evaluating
    /// anything.
    pub fn query_plan(&self, src: &str) -> Result<String, CoreError> {
        let module = Module::parse(src, &self.state.schema)?;
        let Some(goal) = &module.goal else {
            return Ok("no goal: nothing to plan\n".to_owned());
        };
        let schema = self.union_schema(&module)?;
        let rules = self.state.rules.union(&module.rules);
        let plan = logres_lang::analyze::plan_goal(&schema, &rules, goal);
        Ok(plan.render(&rules))
    }

    /// The compiled program a module source lowers to, as deterministic
    /// indented text (EXPLAIN): the persistent rules unioned with the
    /// module's, stratified and translated to ALGRES operator trees. When
    /// the program falls outside the compilable fragment, the fallback
    /// reason is rendered instead. Nothing is evaluated.
    pub fn explain_goal(&self, src: &str) -> Result<String, CoreError> {
        self.explain_with(src, logres_engine::render_program)
    }

    /// [`Database::explain_goal`] as fixed-key-order JSON lines, one object
    /// per stratum, rule, and operator node — byte-identical for the same
    /// program, so suitable for golden tests and tooling.
    pub fn explain_goal_json(&self, src: &str) -> Result<String, CoreError> {
        self.explain_with(src, logres_engine::render_program_json)
    }

    fn explain_with(
        &self,
        src: &str,
        render: fn(&logres_engine::CompiledProgram, &RuleSet) -> String,
    ) -> Result<String, CoreError> {
        let module = Module::parse(src, &self.state.schema)?;
        let schema = self.union_schema(&module)?;
        let rules = self.state.rules.union(&module.rules);
        match logres_engine::compile_program(&schema, &rules, self.semantics) {
            Ok(program) => Ok(render(&program, &rules)),
            Err(u) => Ok(logres_engine::render_unsupported(&u)),
        }
    }

    /// EXPLAIN ANALYZE: evaluate the module source with per-operator
    /// profiling on and render the annotated plan — each operator with its
    /// evaluation count, rows in/out, hash builds, probes, memo hits, and
    /// inclusive/exclusive wall time, plus the driver's `materialize` step.
    /// Falls back to a message when the program ran on the interpreter
    /// (there is no operator tree to profile).
    pub fn explain_analyze_goal(&mut self, src: &str) -> Result<String, CoreError> {
        let mut opts = self.opts.clone();
        opts.profile = true;
        let (_, report) = self.query_with_options(src, opts)?;
        match report.plan_profile {
            Some(profile) => Ok(profile.render()),
            None => Ok(
                "no plan profile: the program ran on the interpreter, not the compiled path\n"
                    .to_owned(),
            ),
        }
    }

    /// The demand-driven fast path shared by [`Database::query`] and
    /// [`Database::query_with_options`]: `Ok(None)` means the goal's plan
    /// fell back and the caller must run the full RIDI application.
    fn try_demand_answer(&self, module: &Module) -> Result<Option<(Rows, EvalReport)>, CoreError> {
        let Some(goal) = &module.goal else {
            return Ok(None);
        };
        let schema = self.union_schema(module)?;
        let rules = self.state.rules.union(&module.rules);
        logres_engine::answer_goal_demand(
            &schema,
            &rules,
            &self.state.edb,
            goal,
            self.semantics,
            self.opts.clone(),
        )
        .map_err(CoreError::Engine)
    }

    // ----- helpers ----------------------------------------------------------

    fn union_schema(&self, module: &Module) -> Result<Schema, CoreError> {
        let mut s = self
            .state
            .schema
            .union(&module.schema)
            .map_err(|e| CoreError::Model(vec![e]))?;
        s.validate().map_err(CoreError::Model)?;
        Ok(s)
    }

    /// Compute the candidate state's instance and reject the application if
    /// it is inconsistent (Section 4.1: the new instance must be defined).
    fn check_candidate(
        &self,
        candidate: &DatabaseState,
        semantics: Semantics,
    ) -> Result<(Instance, EvalReport), CoreError> {
        let (inst, report) = candidate
            .instance(semantics, self.opts.clone())
            .map_err(CoreError::Engine)?;
        let consistency = candidate.check_consistency(&inst)?;
        if !consistency.is_consistent() {
            return Err(CoreError::Rejected {
                violations: consistency.violations,
            });
        }
        Ok((inst, report))
    }

    fn answer(
        &self,
        schema: &Schema,
        inst: &Instance,
        module: &Module,
    ) -> Result<Option<Rows>, CoreError> {
        match &module.goal {
            Some(goal) => Ok(Some(
                answer_goal(schema, inst, goal).map_err(CoreError::Engine)?,
            )),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PEOPLE: &str = r#"
        associations
          parent   = (par: string, chil: string);
        facts
          parent(par: "adam", chil: "cain").
          parent(par: "cain", chil: "enoch").
    "#;

    #[test]
    fn apply_source_caches_parsed_modules_until_the_schema_changes() {
        let mut db = Database::from_source(PEOPLE).unwrap();
        let update = r#"rules parent(par: "enoch", chil: "irad") <- ."#;
        db.apply_source(update, Mode::Ridv).unwrap();
        db.apply_source(update, Mode::Ridv).unwrap();
        assert_eq!(db.parse_cache.len(), 1, "repeat applies parse once");

        // A module with its own equations changes `S`, so cached parses
        // (typed against the old schema) must be dropped.
        db.apply_source(
            r#"
            associations
              pet = (name: string);
            "#,
            Mode::Radi,
        )
        .unwrap();
        assert!(
            db.parse_cache.is_empty(),
            "schema-carrying module must invalidate the cache"
        );

        // Transient applications never change `S`: the cache survives.
        db.apply_source(update, Mode::Ridv).unwrap();
        db.apply_source(r#"goal parent(par: "adam", chil: C)?"#, Mode::Ridi)
            .unwrap();
        assert_eq!(db.parse_cache.len(), 2);
    }

    #[test]
    fn ridi_answers_queries_without_changing_state() {
        let mut db = Database::from_source(PEOPLE).unwrap();
        let rules_before = db.rules().len();
        let out = db
            .apply_source(
                r#"
                associations
                  ancestor = (anc: string, des: string);
                rules
                  ancestor(anc: X, des: Y) <- parent(par: X, chil: Y).
                  ancestor(anc: X, des: Z) <- parent(par: X, chil: Y),
                                              ancestor(anc: Y, des: Z).
                goal ancestor(anc: "adam", des: D)?
                "#,
                Mode::Ridi,
            )
            .unwrap();
        assert_eq!(out.answer.unwrap().len(), 2);
        // Nothing persisted: neither rules nor the ancestor association.
        assert_eq!(db.rules().len(), rules_before);
        assert!(db.schema().assoc_type(Sym::new("ancestor")).is_none());
    }

    #[test]
    fn radi_persists_rules_and_schema() {
        let mut db = Database::from_source(PEOPLE).unwrap();
        db.apply_source(
            r#"
            associations
              ancestor = (anc: string, des: string);
            rules
              ancestor(anc: X, des: Y) <- parent(par: X, chil: Y).
            "#,
            Mode::Radi,
        )
        .unwrap();
        assert_eq!(db.rules().len(), 1);
        assert!(db.schema().assoc_type(Sym::new("ancestor")).is_some());
        // The persisted rule now answers plain queries.
        let rows = db.query("goal ancestor(anc: X, des: Y)?").unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn rddi_removes_rules_again() {
        let mut db = Database::from_source(PEOPLE).unwrap();
        let module_src = r#"
            associations
              ancestor = (anc: string, des: string);
            rules
              ancestor(anc: X, des: Y) <- parent(par: X, chil: Y).
        "#;
        db.apply_source(module_src, Mode::Radi).unwrap();
        assert_eq!(db.rules().len(), 1);
        db.apply_source(module_src, Mode::Rddi).unwrap();
        assert_eq!(db.rules().len(), 0);
        assert!(db.schema().assoc_type(Sym::new("ancestor")).is_none());
    }

    #[test]
    fn ridv_updates_the_edb_in_place() {
        // Example 4.1 of the paper.
        let mut db = Database::from_source(
            r#"
            associations
              italian = (name: string);
              roman   = (name: string);
            facts
              italian(name: "sara").
            "#,
        )
        .unwrap();
        let out = db
            .apply_source(
                r#"
                rules
                  italian(name: "luca") <- .
                  roman(name: "ugo") <- .
                  italian(name: X) <- roman(name: X).
                "#,
                Mode::Ridv,
            )
            .unwrap();
        assert!(out.answer.is_none());
        assert_eq!(db.edb().assoc_len(Sym::new("italian")), 3);
        assert_eq!(db.edb().assoc_len(Sym::new("roman")), 1);
        // No rules persisted.
        assert_eq!(db.rules().len(), 0);
    }

    #[test]
    fn example_4_2_via_ridv_module() {
        let mut db = Database::from_source(
            r#"
            associations
              p = (d1: integer, d2: integer);
            facts
              p(d1: 1, d2: 1).
              p(d1: 2, d2: 2).
              p(d1: 3, d2: 3).
              p(d1: 4, d2: 4).
            "#,
        )
        .unwrap();
        db.apply_source(
            r#"
            associations
              mod_t = (d1: integer, d2: integer);
            rules
              p(d1: X, d2: Z) <- p(d1: X, d2: Y), even(X), Z = Y + 1,
                                 not mod_t(d1: X, d2: Y).
              mod_t(d1: X, d2: Z) <- p(d1: X, d2: Y), even(X), Z = Y + 1,
                                     not mod_t(d1: X, d2: Y).
              -p(Y) <- p(Y, d1: X), even(X), not mod_t(Y).
            "#,
            Mode::Ridv,
        )
        .unwrap();
        let p = Sym::new("p");
        assert_eq!(db.edb().assoc_len(p), 4);
        for (a, b) in [(1, 1), (2, 3), (3, 3), (4, 5)] {
            assert!(db.edb().has_tuple(
                p,
                &Value::tuple([("d1", Value::Int(a)), ("d2", Value::Int(b))])
            ));
        }
    }

    #[test]
    fn rddv_deletes_module_derivable_facts_and_rules() {
        let mut db = Database::from_source(
            r#"
            associations
              p = (d: integer);
            facts
              p(d: 1).
              p(d: 2).
            "#,
        )
        .unwrap();
        // The module derives p(1) from nothing; RDDV removes it and the rule.
        db.apply_source(
            r#"
            rules
              p(d: 1) <- .
            "#,
            Mode::Rddv,
        )
        .unwrap();
        assert_eq!(db.edb().assoc_len(Sym::new("p")), 1);
        assert!(db
            .edb()
            .has_tuple(Sym::new("p"), &Value::tuple([("d", Value::Int(2))])));
    }

    #[test]
    fn data_variant_modes_reject_goals() {
        let mut db = Database::from_source(PEOPLE).unwrap();
        let err = db
            .apply_source(
                r#"
                rules
                  parent(par: "x", chil: "y") <- .
                goal parent(par: X)?
                "#,
                Mode::Ridv,
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::GoalNotAllowed(Mode::Ridv)));
    }

    #[test]
    fn inconsistent_applications_are_rejected_atomically() {
        let mut db = Database::from_source(
            r#"
            associations
              married  = (who: string);
              divorced = (who: string);
            facts
              married(who: "x").
            constraints
              <- married(who: X), divorced(who: X).
            "#,
        )
        .unwrap();
        let before = db.edb().clone();
        let err = db
            .apply_source(
                r#"
                rules
                  divorced(who: "x") <- .
                "#,
                Mode::Ridv,
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Rejected { .. }));
        // Atomicity: the EDB is unchanged.
        assert_eq!(db.edb(), &before);
    }

    #[test]
    fn referential_integrity_rejects_dangling_updates() {
        let mut db = Database::from_source(
            r#"
            classes
              team = (name: string);
            associations
              fixture = (h: team, g: team);
            "#,
        )
        .unwrap();
        // A module inserting a fixture with nil teams violates the
        // association referential constraint generated from the schema.
        let err = db
            .apply_source(
                r#"
                rules
                  fixture(h: X, g: Y) <- .
                "#,
                Mode::Ridv,
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Rejected { .. }));
    }

    #[test]
    fn materialize_makes_e_coincide_with_i() {
        let mut db = Database::from_source(
            r#"
            associations
              e  = (a: integer, b: integer);
              tc = (a: integer, b: integer);
            facts
              e(a: 1, b: 2).
              e(a: 2, b: 3).
            rules
              tc(a: X, b: Y) <- e(a: X, b: Y).
              tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).
            "#,
        )
        .unwrap();
        assert_eq!(db.edb().assoc_len(Sym::new("tc")), 0);
        db.materialize().unwrap();
        assert_eq!(db.edb().assoc_len(Sym::new("tc")), 3);
    }

    #[test]
    fn semantics_override_is_per_application() {
        let mut db = Database::from_source(
            r#"
            associations
              node     = (n: integer);
              edge     = (a: integer, b: integer);
              covered  = (n: integer);
              isolated = (n: integer);
            facts
              node(n: 1).
              node(n: 2).
              node(n: 3).
              edge(a: 1, b: 2).
            "#,
        )
        .unwrap();
        let module = Module::parse(
            r#"
            rules
              covered(n: X) <- edge(a: X, b: Y).
              covered(n: X) <- edge(a: Y, b: X).
              isolated(n: X) <- node(n: X), not covered(n: X).
            goal isolated(n: X)?
            "#,
            db.schema(),
        )
        .unwrap();
        let strat = db
            .apply_with(&module, Mode::Ridi, Semantics::Stratified)
            .unwrap();
        let infl = db
            .apply_with(&module, Mode::Ridi, Semantics::Inflationary)
            .unwrap();
        assert_eq!(strat.answer.unwrap().len(), 1);
        assert!(infl.answer.unwrap().len() > 1);
    }

    #[test]
    fn why_walks_a_derived_fact_to_edb() {
        let db = Database::from_source(
            r#"
            associations
              parent   = (par: string, chil: string);
              ancestor = (anc: string, des: string);
            facts
              parent(par: "adam", chil: "cain").
              parent(par: "cain", chil: "enoch").
            rules
              ancestor(anc: X, des: Y) <- parent(par: X, chil: Y).
              ancestor(anc: X, des: Z) <- parent(par: X, chil: Y),
                                          ancestor(anc: Y, des: Z).
            "#,
        )
        .unwrap();
        let fact = Fact::Assoc {
            assoc: Sym::new("ancestor"),
            tuple: Value::tuple([("anc", Value::str("adam")), ("des", Value::str("enoch"))]),
        };
        let d = db.why(&fact).unwrap().expect("fact is derived");
        assert!(!d.is_edb());
        assert_eq!(d.depth(), 3);
        assert_eq!(d.edb_leaves(), 2);
        // The textual form resolves to the same chain.
        let text = db
            .why_source(r#"ancestor(anc: "adam", des: "enoch")"#)
            .unwrap();
        assert!(text.contains("via rule #"), "text: {text}");
        assert_eq!(text.matches("[EDB]").count(), 2, "text: {text}");
        // An EDB fact is a leaf; an absent fact is None / a message.
        let edb = db
            .why_source(r#"parent(par: "adam", chil: "cain")"#)
            .unwrap();
        assert!(edb.contains("[EDB]"));
        let missing = db
            .why_source(r#"ancestor(anc: "enoch", des: "adam")"#)
            .unwrap();
        assert!(missing.contains("not in the instance"), "text: {missing}");
    }

    #[test]
    fn enable_metrics_records_evaluations() {
        let mut db = Database::from_source(PEOPLE).unwrap();
        let registry = db.enable_metrics();
        db.query("goal parent(par: X, chil: Y)?").unwrap();
        let snapshot = registry.counter_snapshot();
        let steps = snapshot
            .iter()
            .find(|(name, _)| name == "logres_eval_steps_total")
            .map(|(_, v)| *v)
            .unwrap_or_default();
        assert!(steps > 0, "snapshot: {snapshot:?}");
        assert!(db
            .metrics()
            .contains("# TYPE logres_eval_steps_total counter"));
        // Idempotent: a second call returns the same registry.
        let again = db.enable_metrics();
        assert!(Arc::ptr_eq(&registry, &again));
    }

    #[test]
    fn check_analyzes_the_persistent_state() {
        // A clean, rule-free database has nothing to report.
        let db = Database::from_source(PEOPLE).unwrap();
        assert!(db.check().is_empty());

        // `ghost` has no facts and no deriving rule: L001. The derivation
        // into `out_p` is never consulted by another rule or constraint:
        // L002.
        let mut db = Database::from_source(
            r#"
            associations
              src   = (d: integer);
              ghost = (d: integer);
              out_p = (d: integer);
            facts
              src(d: 1).
            rules
              out_p(d: X) <- src(d: X), ghost(d: X).
            "#,
        )
        .unwrap();
        db.enable_metrics();
        // Position-stable order: L002 anchors at the rule head, L001 at the
        // `ghost` body literal further right on the same line.
        let codes: Vec<&str> = db.check().iter().map(|d| d.code).collect();
        assert_eq!(codes, ["L002", "L001"]);
        let metrics = db.metrics();
        assert!(
            metrics.contains(r#"logres_check_diagnostics_total{code="L001"} 1"#),
            "{metrics}"
        );
        assert!(
            metrics.contains(r#"logres_check_diagnostics_total{code="L002"} 1"#),
            "{metrics}"
        );

        // Facts loaded for `ghost` silence L001: the EDB set comes from the
        // live extensions, not from any program text.
        db.apply_source("rules\n  ghost(d: 5) <- .", Mode::Ridv)
            .unwrap();
        let codes: Vec<&str> = db.check().iter().map(|d| d.code).collect();
        assert_eq!(codes, ["L002"]);
    }

    const ANCESTRY: &str = r#"
        associations
          parent   = (par: string, chil: string);
          ancestor = (anc: string, des: string);
        facts
          parent(par: "adam", chil: "cain").
          parent(par: "cain", chil: "enoch").
          parent(par: "eve", chil: "abel").
        rules
          ancestor(anc: X, des: Y) <- parent(par: X, chil: Y).
          ancestor(anc: X, des: Z) <- ancestor(anc: X, des: Y),
                                      parent(par: Y, chil: Z).
    "#;

    #[test]
    fn selective_queries_take_the_demand_path() {
        let mut db = Database::from_source(ANCESTRY).unwrap();
        let registry = db.enable_metrics();
        let rows = db.query(r#"goal ancestor(anc: "adam", des: D)?"#).unwrap();
        assert_eq!(rows.len(), 2);
        let snapshot = registry.counter_snapshot();
        let rewrites = snapshot
            .iter()
            .find(|(name, _)| name == "logres_magic_rewrites_total")
            .map(|(_, v)| *v)
            .unwrap_or_default();
        assert_eq!(rewrites, 1, "snapshot: {snapshot:?}");
        // An all-free goal falls back to the full fixpoint, with the same
        // transient semantics: nothing persists either way.
        let all = db.query("goal ancestor(anc: X, des: Y)?").unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(db.rules().len(), 2);
    }

    #[test]
    fn demand_and_full_answers_agree() {
        let mut db = Database::from_source(ANCESTRY).unwrap();
        let fast = db.query(r#"goal ancestor(anc: "adam", des: D)?"#).unwrap();
        // Forcing the full path through apply_source must give the same rows.
        let full = db
            .apply_source(r#"goal ancestor(anc: "adam", des: D)?"#, Mode::Ridi)
            .unwrap()
            .answer
            .unwrap();
        assert_eq!(fast, full);
    }

    #[test]
    fn query_plan_renders_rewrites_and_fallbacks() {
        let db = Database::from_source(ANCESTRY).unwrap();
        let plan = db
            .query_plan(r#"goal ancestor(anc: "adam", des: D)?"#)
            .unwrap();
        assert!(plan.contains("ancestor[anc: bound, des: free]"), "{plan}");
        assert!(plan.contains("@magic_ancestor"), "{plan}");
        let fallback = db.query_plan("goal ancestor(anc: X, des: Y)?").unwrap();
        assert!(fallback.contains("full fixpoint"), "{fallback}");
        let no_goal = db
            .query_plan("rules\n  parent(par: \"x\", chil: \"y\") <- .")
            .unwrap();
        assert!(no_goal.contains("nothing to plan"), "{no_goal}");
    }

    #[test]
    fn oid_invention_through_a_module() {
        // Example 3.4: IP objects created from interesting pairs.
        let mut db = Database::from_source(
            r#"
            classes
              emp  = (name: string, works: string);
              dept = (dname: string, depmgr: emp);
            associations
              pair = (employee: emp, manager: emp);
            "#,
        )
        .unwrap();
        db.apply_source(
            r#"
            rules
              emp(self: X, name: "smith", works: "d1") <- .
              emp(self: X, name: "smith", works: "d2") <- .
            "#,
            Mode::Ridv,
        )
        .unwrap();
        assert_eq!(db.edb().class_len(Sym::new("emp")), 2);
    }
}
