//! The LOGRES database facade: owns a state `(E, R, S)` and applies modules
//! under the six modes of Section 4.1.
//!
//! "The evolution of a LOGRES database is obtained through sequences of
//! applications of update modules to existing LOGRES database states."
//! Modes of application also select the semantics given to rules —
//! "LOGRES modules and databases are parametric with respect to the
//! semantics of the rules they support" — so every application may override
//! the database's default semantics.

use logres_engine::{answer_goal, evaluate, load_facts, EvalOptions, EvalReport, Semantics};
use logres_lang::{parse_program, RuleSet};
use logres_model::{integrity, Instance, IntegrityConstraint, Schema, Sym, Value};

use crate::error::CoreError;
use crate::module::{Mode, Module};
use crate::state::DatabaseState;

/// Goal answers: one row per result, binding the goal variables in order.
pub type Rows = Vec<Vec<(Sym, Value)>>;

/// What a module application produced.
#[derive(Debug, Clone)]
pub struct ApplicationOutcome {
    /// The goal answer, for goal-answering modes with a goal.
    pub answer: Option<Rows>,
    /// Evaluation statistics.
    pub report: EvalReport,
}

/// A LOGRES database.
#[derive(Debug, Clone)]
pub struct Database {
    state: DatabaseState,
    semantics: Semantics,
    opts: EvalOptions,
}

impl Database {
    /// An empty database over a validated schema.
    pub fn new(schema: Schema) -> Database {
        Database {
            state: DatabaseState::new(schema),
            semantics: Semantics::default(),
            opts: EvalOptions::default(),
        }
    }

    /// Bootstrap a database from a program text: schema sections define
    /// `S`, the facts section loads `E`, rule/constraint sections seed the
    /// persistent `R`.
    pub fn from_source(src: &str) -> Result<Database, CoreError> {
        let program = parse_program(src).map_err(CoreError::Lang)?;
        logres_lang::check_program(&program).map_err(CoreError::Lang)?;
        let mut edb = Instance::new();
        let mut gen = logres_model::OidGen::new();
        load_facts(&program.schema, &mut edb, &program.facts, &mut gen)
            .map_err(CoreError::Engine)?;
        Ok(Database {
            state: DatabaseState {
                schema: program.schema,
                rules: program.rules,
                edb,
                constraints: program.constraints,
            },
            semantics: Semantics::default(),
            opts: EvalOptions::default(),
        })
    }

    /// Wrap an existing state (e.g. one restored by [`crate::persist::load`]).
    pub fn from_state(state: DatabaseState) -> Database {
        Database {
            state,
            semantics: Semantics::default(),
            opts: EvalOptions::default(),
        }
    }

    /// The current persistent state.
    pub fn state(&self) -> &DatabaseState {
        &self.state
    }

    /// Serialize the full state `(E, R, S)` to text (see [`crate::persist`]).
    pub fn save(&self) -> String {
        crate::persist::save(&self.state)
    }

    /// Restore a database from [`Database::save`] output.
    pub fn load(text: &str) -> Result<Database, CoreError> {
        Ok(Database::from_state(crate::persist::load(text)?))
    }

    /// The schema `S`.
    pub fn schema(&self) -> &Schema {
        &self.state.schema
    }

    /// The extensional database `E`.
    pub fn edb(&self) -> &Instance {
        &self.state.edb
    }

    /// The persistent rules `R`.
    pub fn rules(&self) -> &RuleSet {
        &self.state.rules
    }

    /// Default semantics for rule evaluation.
    pub fn set_semantics(&mut self, semantics: Semantics) {
        self.semantics = semantics;
    }

    /// Fuel limits, governor budgets, and trace sink for evaluations.
    pub fn set_options(&mut self, opts: EvalOptions) {
        self.opts = opts;
    }

    /// The database's current evaluation options.
    pub fn options(&self) -> &EvalOptions {
        &self.opts
    }

    /// The referential integrity constraints generated from the current
    /// type equations (Section 2.1).
    pub fn integrity_constraints(&self) -> Vec<IntegrityConstraint> {
        integrity::generate(&self.state.schema)
    }

    /// Materialize the database instance: compute `I` from `(E, R)`.
    pub fn instance(&self) -> Result<(Instance, EvalReport), CoreError> {
        self.state
            .instance(self.semantics, self.opts.clone())
            .map_err(CoreError::Engine)
    }

    /// Make `E` coincide with the instance `I` (Section 4.2,
    /// "materializing the instance"): `E := I`. The rules stay in place, so
    /// they keep acting as triggers on later updates.
    pub fn materialize(&mut self) -> Result<EvalReport, CoreError> {
        let (inst, report) = self.instance()?;
        self.state.edb = inst;
        Ok(report)
    }

    /// Parse and apply a module in one call.
    pub fn apply_source(&mut self, src: &str, mode: Mode) -> Result<ApplicationOutcome, CoreError> {
        let module = Module::parse(src, &self.state.schema)?;
        self.apply(&module, mode)
    }

    /// Apply a module under the database's default semantics.
    pub fn apply(&mut self, module: &Module, mode: Mode) -> Result<ApplicationOutcome, CoreError> {
        self.apply_with(module, mode, self.semantics)
    }

    /// Apply a module, overriding the rule semantics for this application.
    pub fn apply_with(
        &mut self,
        module: &Module,
        mode: Mode,
        semantics: Semantics,
    ) -> Result<ApplicationOutcome, CoreError> {
        if module.goal.is_some() && !mode.answers_goal() {
            return Err(CoreError::GoalNotAllowed(mode));
        }

        match mode {
            Mode::Ridi => {
                // Transient: evaluate R ∪ R_M over E with S ∪ S_M; nothing
                // persists.
                let schema = self.union_schema(module)?;
                let rules = self.state.rules.union(&module.rules);
                let (inst, report) = evaluate(
                    &schema,
                    &rules,
                    &self.state.edb,
                    semantics,
                    self.opts.clone(),
                )
                .map_err(CoreError::Engine)?;
                let answer = self.answer(&schema, &inst, module)?;
                Ok(ApplicationOutcome { answer, report })
            }
            Mode::Radi => {
                let schema = self.union_schema(module)?;
                let rules = self.state.rules.union(&module.rules);
                let mut constraints = self.state.constraints.clone();
                for d in &module.constraints {
                    if !constraints.contains(d) {
                        constraints.push(d.clone());
                    }
                }
                let candidate = DatabaseState {
                    schema,
                    rules,
                    edb: self.state.edb.clone(),
                    constraints,
                };
                let (inst, report) = self.check_candidate(&candidate, semantics)?;
                let answer = self.answer(&candidate.schema, &inst, module)?;
                self.state = candidate;
                Ok(ApplicationOutcome { answer, report })
            }
            Mode::Rddi => {
                let mut schema = self.state.schema.difference(&module.schema);
                schema.validate().map_err(CoreError::Model)?;
                let rules = self.state.rules.difference(&module.rules);
                let constraints: Vec<_> = self
                    .state
                    .constraints
                    .iter()
                    .filter(|d| !module.constraints.contains(d))
                    .cloned()
                    .collect();
                let candidate = DatabaseState {
                    schema,
                    rules,
                    edb: self.state.edb.clone(),
                    constraints,
                };
                let (inst, report) = self.check_candidate(&candidate, semantics)?;
                let answer = self.answer(&candidate.schema, &inst, module)?;
                self.state = candidate;
                Ok(ApplicationOutcome { answer, report })
            }
            Mode::Ridv => {
                // E' = result of applying the *module* rules to E; the
                // persistent rules are untouched but S gains the module's
                // new type equations (the paper's S_M(EDB)).
                let schema = self.union_schema(module)?;
                let (new_edb, report) = evaluate(
                    &schema,
                    &module.rules,
                    &self.state.edb,
                    semantics,
                    self.opts.clone(),
                )
                .map_err(CoreError::Engine)?;
                let candidate = DatabaseState {
                    schema,
                    rules: self.state.rules.clone(),
                    edb: new_edb,
                    constraints: self.state.constraints.clone(),
                };
                let (_, _) = self.check_candidate(&candidate, semantics)?;
                self.state = candidate;
                Ok(ApplicationOutcome {
                    answer: None,
                    report,
                })
            }
            Mode::Radv => {
                let schema = self.union_schema(module)?;
                let (new_edb, report) = evaluate(
                    &schema,
                    &module.rules,
                    &self.state.edb,
                    semantics,
                    self.opts.clone(),
                )
                .map_err(CoreError::Engine)?;
                let rules = self.state.rules.union(&module.rules);
                let mut constraints = self.state.constraints.clone();
                for d in &module.constraints {
                    if !constraints.contains(d) {
                        constraints.push(d.clone());
                    }
                }
                let candidate = DatabaseState {
                    schema,
                    rules,
                    edb: new_edb,
                    constraints,
                };
                let (_, _) = self.check_candidate(&candidate, semantics)?;
                self.state = candidate;
                Ok(ApplicationOutcome {
                    answer: None,
                    report,
                })
            }
            Mode::Rddv => {
                // E_M = the instance of (∅, R_M); E' = E − E_M.
                let schema = self.union_schema(module)?;
                let (em, report) = evaluate(
                    &schema,
                    &module.rules,
                    &Instance::new(),
                    semantics,
                    self.opts.clone(),
                )
                .map_err(CoreError::Engine)?;
                let mut new_edb = self.state.edb.clone();
                for fact in em.facts(&schema) {
                    new_edb.remove_fact(&schema, &fact);
                }
                let mut new_schema = self.state.schema.difference(&module.schema);
                new_schema.validate().map_err(CoreError::Model)?;
                let rules = self.state.rules.difference(&module.rules);
                let constraints: Vec<_> = self
                    .state
                    .constraints
                    .iter()
                    .filter(|d| !module.constraints.contains(d))
                    .cloned()
                    .collect();
                let candidate = DatabaseState {
                    schema: new_schema,
                    rules,
                    edb: new_edb,
                    constraints,
                };
                let (_, _) = self.check_candidate(&candidate, semantics)?;
                self.state = candidate;
                Ok(ApplicationOutcome {
                    answer: None,
                    report,
                })
            }
        }
    }

    /// Evaluate a goal-only module (convenience for queries).
    pub fn query(&mut self, src: &str) -> Result<Rows, CoreError> {
        let outcome = self.apply_source(src, Mode::Ridi)?;
        Ok(outcome.answer.unwrap_or_default())
    }

    /// [`Database::query`] under one-off evaluation options (deadline,
    /// budgets, trace sink, thread count) without disturbing the database's
    /// defaults; returns the rows together with the evaluation report so
    /// callers can inspect profiles and budget consumption.
    pub fn query_with_options(
        &mut self,
        src: &str,
        opts: EvalOptions,
    ) -> Result<(Rows, EvalReport), CoreError> {
        let saved = std::mem::replace(&mut self.opts, opts);
        let result = self.apply_source(src, Mode::Ridi);
        self.opts = saved;
        let outcome = result?;
        Ok((outcome.answer.unwrap_or_default(), outcome.report))
    }

    // ----- helpers ----------------------------------------------------------

    fn union_schema(&self, module: &Module) -> Result<Schema, CoreError> {
        let mut s = self
            .state
            .schema
            .union(&module.schema)
            .map_err(|e| CoreError::Model(vec![e]))?;
        s.validate().map_err(CoreError::Model)?;
        Ok(s)
    }

    /// Compute the candidate state's instance and reject the application if
    /// it is inconsistent (Section 4.1: the new instance must be defined).
    fn check_candidate(
        &self,
        candidate: &DatabaseState,
        semantics: Semantics,
    ) -> Result<(Instance, EvalReport), CoreError> {
        let (inst, report) = candidate
            .instance(semantics, self.opts.clone())
            .map_err(CoreError::Engine)?;
        let consistency = candidate.check_consistency(&inst)?;
        if !consistency.is_consistent() {
            return Err(CoreError::Rejected {
                violations: consistency.violations,
            });
        }
        Ok((inst, report))
    }

    fn answer(
        &self,
        schema: &Schema,
        inst: &Instance,
        module: &Module,
    ) -> Result<Option<Rows>, CoreError> {
        match &module.goal {
            Some(goal) => Ok(Some(
                answer_goal(schema, inst, goal).map_err(CoreError::Engine)?,
            )),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PEOPLE: &str = r#"
        associations
          parent   = (par: string, chil: string);
        facts
          parent(par: "adam", chil: "cain").
          parent(par: "cain", chil: "enoch").
    "#;

    #[test]
    fn ridi_answers_queries_without_changing_state() {
        let mut db = Database::from_source(PEOPLE).unwrap();
        let rules_before = db.rules().len();
        let out = db
            .apply_source(
                r#"
                associations
                  ancestor = (anc: string, des: string);
                rules
                  ancestor(anc: X, des: Y) <- parent(par: X, chil: Y).
                  ancestor(anc: X, des: Z) <- parent(par: X, chil: Y),
                                              ancestor(anc: Y, des: Z).
                goal ancestor(anc: "adam", des: D)?
                "#,
                Mode::Ridi,
            )
            .unwrap();
        assert_eq!(out.answer.unwrap().len(), 2);
        // Nothing persisted: neither rules nor the ancestor association.
        assert_eq!(db.rules().len(), rules_before);
        assert!(db.schema().assoc_type(Sym::new("ancestor")).is_none());
    }

    #[test]
    fn radi_persists_rules_and_schema() {
        let mut db = Database::from_source(PEOPLE).unwrap();
        db.apply_source(
            r#"
            associations
              ancestor = (anc: string, des: string);
            rules
              ancestor(anc: X, des: Y) <- parent(par: X, chil: Y).
            "#,
            Mode::Radi,
        )
        .unwrap();
        assert_eq!(db.rules().len(), 1);
        assert!(db.schema().assoc_type(Sym::new("ancestor")).is_some());
        // The persisted rule now answers plain queries.
        let rows = db.query("goal ancestor(anc: X, des: Y)?").unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn rddi_removes_rules_again() {
        let mut db = Database::from_source(PEOPLE).unwrap();
        let module_src = r#"
            associations
              ancestor = (anc: string, des: string);
            rules
              ancestor(anc: X, des: Y) <- parent(par: X, chil: Y).
        "#;
        db.apply_source(module_src, Mode::Radi).unwrap();
        assert_eq!(db.rules().len(), 1);
        db.apply_source(module_src, Mode::Rddi).unwrap();
        assert_eq!(db.rules().len(), 0);
        assert!(db.schema().assoc_type(Sym::new("ancestor")).is_none());
    }

    #[test]
    fn ridv_updates_the_edb_in_place() {
        // Example 4.1 of the paper.
        let mut db = Database::from_source(
            r#"
            associations
              italian = (name: string);
              roman   = (name: string);
            facts
              italian(name: "sara").
            "#,
        )
        .unwrap();
        let out = db
            .apply_source(
                r#"
                rules
                  italian(name: "luca") <- .
                  roman(name: "ugo") <- .
                  italian(name: X) <- roman(name: X).
                "#,
                Mode::Ridv,
            )
            .unwrap();
        assert!(out.answer.is_none());
        assert_eq!(db.edb().assoc_len(Sym::new("italian")), 3);
        assert_eq!(db.edb().assoc_len(Sym::new("roman")), 1);
        // No rules persisted.
        assert_eq!(db.rules().len(), 0);
    }

    #[test]
    fn example_4_2_via_ridv_module() {
        let mut db = Database::from_source(
            r#"
            associations
              p = (d1: integer, d2: integer);
            facts
              p(d1: 1, d2: 1).
              p(d1: 2, d2: 2).
              p(d1: 3, d2: 3).
              p(d1: 4, d2: 4).
            "#,
        )
        .unwrap();
        db.apply_source(
            r#"
            associations
              mod_t = (d1: integer, d2: integer);
            rules
              p(d1: X, d2: Z) <- p(d1: X, d2: Y), even(X), Z = Y + 1,
                                 not mod_t(d1: X, d2: Y).
              mod_t(d1: X, d2: Z) <- p(d1: X, d2: Y), even(X), Z = Y + 1,
                                     not mod_t(d1: X, d2: Y).
              -p(Y) <- p(Y, d1: X), even(X), not mod_t(Y).
            "#,
            Mode::Ridv,
        )
        .unwrap();
        let p = Sym::new("p");
        assert_eq!(db.edb().assoc_len(p), 4);
        for (a, b) in [(1, 1), (2, 3), (3, 3), (4, 5)] {
            assert!(db.edb().has_tuple(
                p,
                &Value::tuple([("d1", Value::Int(a)), ("d2", Value::Int(b))])
            ));
        }
    }

    #[test]
    fn rddv_deletes_module_derivable_facts_and_rules() {
        let mut db = Database::from_source(
            r#"
            associations
              p = (d: integer);
            facts
              p(d: 1).
              p(d: 2).
            "#,
        )
        .unwrap();
        // The module derives p(1) from nothing; RDDV removes it and the rule.
        db.apply_source(
            r#"
            rules
              p(d: 1) <- .
            "#,
            Mode::Rddv,
        )
        .unwrap();
        assert_eq!(db.edb().assoc_len(Sym::new("p")), 1);
        assert!(db
            .edb()
            .has_tuple(Sym::new("p"), &Value::tuple([("d", Value::Int(2))])));
    }

    #[test]
    fn data_variant_modes_reject_goals() {
        let mut db = Database::from_source(PEOPLE).unwrap();
        let err = db
            .apply_source(
                r#"
                rules
                  parent(par: "x", chil: "y") <- .
                goal parent(par: X)?
                "#,
                Mode::Ridv,
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::GoalNotAllowed(Mode::Ridv)));
    }

    #[test]
    fn inconsistent_applications_are_rejected_atomically() {
        let mut db = Database::from_source(
            r#"
            associations
              married  = (who: string);
              divorced = (who: string);
            facts
              married(who: "x").
            constraints
              <- married(who: X), divorced(who: X).
            "#,
        )
        .unwrap();
        let before = db.edb().clone();
        let err = db
            .apply_source(
                r#"
                rules
                  divorced(who: "x") <- .
                "#,
                Mode::Ridv,
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Rejected { .. }));
        // Atomicity: the EDB is unchanged.
        assert_eq!(db.edb(), &before);
    }

    #[test]
    fn referential_integrity_rejects_dangling_updates() {
        let mut db = Database::from_source(
            r#"
            classes
              team = (name: string);
            associations
              fixture = (h: team, g: team);
            "#,
        )
        .unwrap();
        // A module inserting a fixture with nil teams violates the
        // association referential constraint generated from the schema.
        let err = db
            .apply_source(
                r#"
                rules
                  fixture(h: X, g: Y) <- .
                "#,
                Mode::Ridv,
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Rejected { .. }));
    }

    #[test]
    fn materialize_makes_e_coincide_with_i() {
        let mut db = Database::from_source(
            r#"
            associations
              e  = (a: integer, b: integer);
              tc = (a: integer, b: integer);
            facts
              e(a: 1, b: 2).
              e(a: 2, b: 3).
            rules
              tc(a: X, b: Y) <- e(a: X, b: Y).
              tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).
            "#,
        )
        .unwrap();
        assert_eq!(db.edb().assoc_len(Sym::new("tc")), 0);
        db.materialize().unwrap();
        assert_eq!(db.edb().assoc_len(Sym::new("tc")), 3);
    }

    #[test]
    fn semantics_override_is_per_application() {
        let mut db = Database::from_source(
            r#"
            associations
              node     = (n: integer);
              edge     = (a: integer, b: integer);
              covered  = (n: integer);
              isolated = (n: integer);
            facts
              node(n: 1).
              node(n: 2).
              node(n: 3).
              edge(a: 1, b: 2).
            "#,
        )
        .unwrap();
        let module = Module::parse(
            r#"
            rules
              covered(n: X) <- edge(a: X, b: Y).
              covered(n: X) <- edge(a: Y, b: X).
              isolated(n: X) <- node(n: X), not covered(n: X).
            goal isolated(n: X)?
            "#,
            db.schema(),
        )
        .unwrap();
        let strat = db
            .apply_with(&module, Mode::Ridi, Semantics::Stratified)
            .unwrap();
        let infl = db
            .apply_with(&module, Mode::Ridi, Semantics::Inflationary)
            .unwrap();
        assert_eq!(strat.answer.unwrap().len(), 1);
        assert!(infl.answer.unwrap().len() > 1);
    }

    #[test]
    fn oid_invention_through_a_module() {
        // Example 3.4: IP objects created from interesting pairs.
        let mut db = Database::from_source(
            r#"
            classes
              emp  = (name: string, works: string);
              dept = (dname: string, depmgr: emp);
            associations
              pair = (employee: emp, manager: emp);
            "#,
        )
        .unwrap();
        db.apply_source(
            r#"
            rules
              emp(self: X, name: "smith", works: "d1") <- .
              emp(self: X, name: "smith", works: "d2") <- .
            "#,
            Mode::Ridv,
        )
        .unwrap();
        assert_eq!(db.edb().class_len(Sym::new("emp")), 2);
    }
}
