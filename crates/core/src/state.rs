//! Database states `(E, R, S)` and their instances.
//!
//! Section 3.1: "A database state is the triple (E, R, S): the set of tuples
//! extensionally stored, the rules (which define more facts), and the schema
//! of the database. The database instance is the result of applying the
//! rules R to E." A predicate can be defined partly extensionally and partly
//! intensionally.

use logres_engine::{evaluate, EngineError, EvalOptions, EvalReport, Semantics};
use logres_lang::{Denial, RuleSet};
use logres_model::{integrity, Instance, Schema};

use crate::error::CoreError;

/// A persistent LOGRES database state.
#[derive(Debug, Clone)]
pub struct DatabaseState {
    /// `S` — the schema.
    pub schema: Schema,
    /// `R` — the persistent intensional database.
    pub rules: RuleSet,
    /// `E` — the persistent extensional database.
    pub edb: Instance,
    /// Passive (denial) constraints stored alongside `R` (Section 4.2).
    pub constraints: Vec<Denial>,
}

/// Outcome of a consistency check.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyReport {
    /// Human-readable violation descriptions; empty = consistent.
    pub violations: Vec<String>,
}

impl ConsistencyReport {
    /// No violations?
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }
}

impl DatabaseState {
    /// A fresh state over a schema.
    pub fn new(schema: Schema) -> DatabaseState {
        DatabaseState {
            schema,
            rules: RuleSet::new(),
            edb: Instance::new(),
            constraints: Vec::new(),
        }
    }

    /// Compute the instance `I` with `(E, I) ∈ 7(R)` under the given
    /// semantics.
    pub fn instance(
        &self,
        semantics: Semantics,
        opts: EvalOptions,
    ) -> Result<(Instance, EvalReport), EngineError> {
        evaluate(&self.schema, &self.rules, &self.edb, semantics, opts)
    }

    /// Check an instance for consistency: the referential integrity
    /// constraints generated from the type equations (Section 2.1) plus the
    /// stored passive denials (Section 4.2).
    pub fn check_consistency(&self, inst: &Instance) -> Result<ConsistencyReport, CoreError> {
        let mut report = ConsistencyReport::default();
        let constraints = integrity::generate(&self.schema);
        push_ref_violations(
            &mut report,
            integrity::check(&self.schema, inst, &constraints),
        );
        self.check_denials(inst, &mut report)?;
        Ok(report)
    }

    /// Delta form of [`check_consistency`] for incremental maintenance:
    /// referential integrity is checked only for the tuples `added` by the
    /// update (against the full instance), and a stored denial is
    /// re-evaluated only when the update could have created a new violating
    /// valuation for it: some *positive* body literal reads a predicate the
    /// update touched. A purely-positive denial body is monotone in the
    /// instance, so from a consistent pre-state a new violation must bind at
    /// least one added fact — denials over untouched predicates cannot newly
    /// fire and are skipped. Denials with negated literals are always
    /// re-checked: a deletion elsewhere in the update can satisfy `not p`
    /// without appearing in `added`.
    pub fn check_consistency_delta(
        &self,
        inst: &Instance,
        added: &[logres_model::Fact],
    ) -> Result<ConsistencyReport, CoreError> {
        let mut report = ConsistencyReport::default();
        let tuples: Vec<(logres_model::Sym, logres_model::Value)> = added
            .iter()
            .filter_map(|f| match f {
                logres_model::Fact::Assoc { assoc, tuple } => Some((*assoc, tuple.clone())),
                _ => None,
            })
            .collect();
        if !tuples.is_empty() {
            let constraints = integrity::generate(&self.schema);
            push_ref_violations(
                &mut report,
                integrity::check_assoc_delta(&self.schema, inst, &constraints, &tuples),
            );
        }
        let touched: rustc_hash::FxHashSet<logres_model::Sym> =
            added.iter().map(|f| f.predicate()).collect();
        self.check_denials_where(inst, &mut report, |denial| {
            denial.body.iter().any(|lit| {
                if lit.negated {
                    return true;
                }
                match &lit.atom {
                    logres_lang::Atom::Pred { pred, .. } => touched.contains(pred),
                    logres_lang::Atom::Member { fun, .. } => touched.contains(fun),
                    logres_lang::Atom::Builtin { .. } => false,
                }
            })
        })?;
        Ok(report)
    }

    fn check_denials(
        &self,
        inst: &Instance,
        report: &mut ConsistencyReport,
    ) -> Result<(), CoreError> {
        self.check_denials_where(inst, report, |_| true)
    }

    fn check_denials_where(
        &self,
        inst: &Instance,
        report: &mut ConsistencyReport,
        relevant: impl Fn(&Denial) -> bool,
    ) -> Result<(), CoreError> {
        for denial in &self.constraints {
            if !relevant(denial) {
                continue;
            }
            let goal = logres_lang::Goal {
                body: denial.body.clone(),
                vars: Vec::new(),
                span: denial.span,
            };
            let rows =
                logres_engine::answer_goal(&self.schema, inst, &goal).map_err(CoreError::Engine)?;
            if !rows.is_empty() {
                report.violations.push(format!("denial violated: {denial}"));
            }
        }
        Ok(())
    }
}

fn push_ref_violations(report: &mut ConsistencyReport, violations: Vec<integrity::Violation>) {
    for v in violations {
        report.violations.push(format!(
            "referential integrity: {}{} must reference `{}`{}",
            v.constraint.owner,
            v.constraint.path,
            v.constraint.target,
            match (&v.oid, &v.tuple) {
                (Some(o), Some(t)) => format!(" (dangling {o} in {t})"),
                (Some(o), None) => format!(" (dangling {o})"),
                (None, Some(t)) => format!(" (nil in {t})"),
                (None, None) => String::new(),
            }
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logres_engine::load_facts;
    use logres_lang::parse_program;
    use logres_model::{OidGen, Sym};

    fn state_from(src: &str) -> DatabaseState {
        let p = parse_program(src).expect("parses");
        let mut edb = Instance::new();
        let mut gen = OidGen::new();
        load_facts(&p.schema, &mut edb, &p.facts, &mut gen).unwrap();
        DatabaseState {
            schema: p.schema,
            rules: p.rules,
            edb,
            constraints: p.constraints,
        }
    }

    #[test]
    fn instance_applies_persistent_rules() {
        let s = state_from(
            r#"
            associations
              e  = (a: integer, b: integer);
              tc = (a: integer, b: integer);
            facts
              e(a: 1, b: 2).
              e(a: 2, b: 3).
            rules
              tc(a: X, b: Y) <- e(a: X, b: Y).
              tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).
        "#,
        );
        let (inst, _) = s
            .instance(Semantics::Inflationary, EvalOptions::default())
            .unwrap();
        assert_eq!(inst.assoc_len(Sym::new("tc")), 3);
        // E is untouched: the instance is derived, not stored.
        assert_eq!(s.edb.assoc_len(Sym::new("tc")), 0);
    }

    #[test]
    fn denials_flag_inconsistent_instances() {
        let s = state_from(
            r#"
            associations
              married  = (who: string);
              divorced = (who: string);
            facts
              married(who: "x").
              divorced(who: "x").
            constraints
              <- married(who: X), divorced(who: X).
        "#,
        );
        let (inst, _) = s
            .instance(Semantics::Inflationary, EvalOptions::default())
            .unwrap();
        let report = s.check_consistency(&inst).unwrap();
        assert!(!report.is_consistent());
        assert!(report.violations[0].contains("denial"));
    }

    #[test]
    fn referential_integrity_is_checked_from_type_equations() {
        let s = state_from(
            r#"
            classes
              team = (name: string);
            associations
              game = (h: team, g: team);
        "#,
        );
        let mut inst = s.edb.clone();
        inst.insert_assoc(
            Sym::new("game"),
            logres_model::Value::tuple([
                ("h", logres_model::Value::Oid(logres_model::Oid(77))),
                ("g", logres_model::Value::Nil),
            ]),
        );
        let report = s.check_consistency(&inst).unwrap();
        assert_eq!(report.violations.len(), 2);
    }

    #[test]
    fn delta_check_scopes_denials_to_touched_predicates() {
        // The pre-state here is already inconsistent: the `married/divorced`
        // denial fires. A delta check whose update touched only `other`
        // must skip that denial (positive bodies over untouched predicates
        // cannot newly fire), so the skip is directly observable.
        let s = state_from(
            r#"
            associations
              married  = (who: string);
              divorced = (who: string);
              other    = (who: string);
            facts
              married(who: "x").
              divorced(who: "x").
            constraints
              <- married(who: X), divorced(who: X).
        "#,
        );
        let (inst, _) = s
            .instance(Semantics::Inflationary, EvalOptions::default())
            .unwrap();
        assert!(!s.check_consistency(&inst).unwrap().is_consistent());
        let added = vec![logres_model::Fact::Assoc {
            assoc: Sym::new("other"),
            tuple: logres_model::Value::tuple([("who", logres_model::Value::str("y"))]),
        }];
        let scoped = s.check_consistency_delta(&inst, &added).unwrap();
        assert!(
            scoped.is_consistent(),
            "untouched-predicate denial must be skipped, got {:?}",
            scoped.violations
        );
        // Touching `married` brings the denial back into scope.
        let added = vec![logres_model::Fact::Assoc {
            assoc: Sym::new("married"),
            tuple: logres_model::Value::tuple([("who", logres_model::Value::str("y"))]),
        }];
        let scoped = s.check_consistency_delta(&inst, &added).unwrap();
        assert!(!scoped.is_consistent());
    }

    #[test]
    fn delta_check_always_reruns_denials_with_negation() {
        // `<- p(d: X), not q(d: X)` can newly fire through a *deletion*
        // from q, which an added-facts delta cannot witness — so negated
        // denials are re-checked regardless of the touched set.
        let s = state_from(
            r#"
            associations
              p     = (d: integer);
              q     = (d: integer);
              other = (d: integer);
            facts
              p(d: 1).
            constraints
              <- p(d: X), not q(d: X).
        "#,
        );
        let (inst, _) = s
            .instance(Semantics::Stratified, EvalOptions::default())
            .unwrap();
        let added = vec![logres_model::Fact::Assoc {
            assoc: Sym::new("other"),
            tuple: logres_model::Value::tuple([("d", logres_model::Value::Int(5))]),
        }];
        let scoped = s.check_consistency_delta(&inst, &added).unwrap();
        assert!(!scoped.is_consistent(), "negated denial must still run");
    }

    #[test]
    fn consistent_states_pass() {
        let s = state_from(
            r#"
            associations
              p = (d: integer);
            facts
              p(d: 1).
            constraints
              <- p(d: 99).
        "#,
        );
        let (inst, _) = s
            .instance(Semantics::Stratified, EvalOptions::default())
            .unwrap();
        assert!(s.check_consistency(&inst).unwrap().is_consistent());
    }
}
