//! An interactive session driver: the "complete programming environment"
//! the paper's §5 plans ("tools supporting the design, debugging, and
//! monitoring of LOGRES databases and programs"), in miniature.
//!
//! [`Repl`] is the testable core; the `logres` binary wraps it around
//! stdin/stdout. Input is line-oriented:
//!
//! * `:commands` act immediately (`:help` lists them);
//! * anything else accumulates into a buffer that is applied as a module
//!   when an empty line arrives — with the current default mode, or RIDI
//!   automatically when the buffer is a pure goal.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use logres_engine::{EngineError, EvalReport, Tracer};
use logres_model::Sym;

use crate::database::Database;
use crate::error::CoreError;
use crate::module::Mode;
use crate::Semantics;

/// Outcome of feeding one line.
#[derive(Debug, PartialEq, Eq)]
pub enum Step {
    /// Text to show the user (possibly empty).
    Output(String),
    /// The session should end.
    Quit,
}

/// Where trace events go, if anywhere (`:trace`).
#[derive(Debug, Clone, PartialEq, Eq)]
enum TraceSetting {
    Off,
    /// In-memory sink, replaced per evaluation so `:trace show` reflects
    /// the latest run only.
    Memory,
    /// JSON lines appended to a file for the rest of the session.
    Json(String),
}

/// An interactive LOGRES session.
pub struct Repl {
    db: Option<Database>,
    mode: Mode,
    buffer: String,
    trace: TraceSetting,
    mem_tracer: Option<Arc<Tracer>>,
    last_report: Option<EvalReport>,
}

impl Default for Repl {
    fn default() -> Self {
        Repl::new()
    }
}

impl Repl {
    /// A session with no database loaded yet.
    pub fn new() -> Repl {
        Repl {
            db: None,
            mode: Mode::Ridv,
            buffer: String::new(),
            trace: TraceSetting::Off,
            mem_tracer: None,
            last_report: None,
        }
    }

    /// A session over an existing database.
    pub fn with_database(db: Database) -> Repl {
        Repl {
            db: Some(db),
            ..Repl::new()
        }
    }

    /// Access the underlying database (for tests and embedding).
    pub fn database(&self) -> Option<&Database> {
        self.db.as_ref()
    }

    /// Is multi-line input pending?
    pub fn pending(&self) -> bool {
        !self.buffer.trim().is_empty()
    }

    /// Feed one line of input.
    pub fn feed(&mut self, line: &str) -> Step {
        let trimmed = line.trim();
        if let Some(cmd) = trimmed.strip_prefix(':') {
            return self.command(cmd);
        }
        if trimmed.is_empty() {
            if self.pending() {
                let src = std::mem::take(&mut self.buffer);
                return Step::Output(self.apply(&src));
            }
            return Step::Output(String::new());
        }
        self.buffer.push_str(line);
        self.buffer.push('\n');
        // A goal terminator ends the unit immediately.
        if trimmed.ends_with('?') {
            let src = std::mem::take(&mut self.buffer);
            return Step::Output(self.apply(&src));
        }
        Step::Output(String::new())
    }

    fn command(&mut self, cmd: &str) -> Step {
        let mut parts = cmd.splitn(2, ' ');
        let name = parts.next().unwrap_or_default();
        let arg = parts.next().unwrap_or_default().trim();
        let out = match name {
            "quit" | "q" => return Step::Quit,
            "help" | "h" => HELP.to_owned(),
            "new" => {
                self.db = Some(
                    Database::from_source("")
                        .unwrap_or_else(|_| Database::new(logres_model::Schema::new())),
                );
                self.attach_metrics();
                self.sync_trace_sink();
                "empty database created".to_owned()
            }
            "load" => match std::fs::read_to_string(arg) {
                Ok(text) => match self.load_text(&text) {
                    Ok(msg) => msg,
                    Err(e) => format!("error: {e}"),
                },
                Err(e) => format!("error reading {arg}: {e}"),
            },
            "save" => match &self.db {
                Some(db) => match std::fs::write(arg, db.save()) {
                    Ok(()) => format!("state saved to {arg}"),
                    Err(e) => format!("error writing {arg}: {e}"),
                },
                None => "no database loaded".to_owned(),
            },
            "mode" => match arg.to_lowercase().as_str() {
                "ridi" => self.set_mode(Mode::Ridi),
                "radi" => self.set_mode(Mode::Radi),
                "rddi" => self.set_mode(Mode::Rddi),
                "ridv" => self.set_mode(Mode::Ridv),
                "radv" => self.set_mode(Mode::Radv),
                "rddv" => self.set_mode(Mode::Rddv),
                "" => format!("current mode: {:?}", self.mode),
                other => format!("unknown mode `{other}` (ridi/radi/rddi/ridv/radv/rddv)"),
            },
            "semantics" => match (&mut self.db, arg.to_lowercase().as_str()) {
                (Some(db), "inflationary") => {
                    db.set_semantics(Semantics::Inflationary);
                    "semantics: inflationary".to_owned()
                }
                (Some(db), "stratified") => {
                    db.set_semantics(Semantics::Stratified);
                    "semantics: stratified".to_owned()
                }
                (Some(_), other) => {
                    format!("unknown semantics `{other}` (inflationary/stratified)")
                }
                (None, _) => "no database loaded".to_owned(),
            },
            "schema" => match &self.db {
                Some(db) => db.schema().to_string(),
                None => "no database loaded".to_owned(),
            },
            "rules" => match &self.db {
                Some(db) => {
                    if db.rules().is_empty() {
                        "(no persistent rules)".to_owned()
                    } else {
                        db.rules().to_string()
                    }
                }
                None => "no database loaded".to_owned(),
            },
            "facts" => match &self.db {
                Some(db) => facts_of(db, arg),
                None => "no database loaded".to_owned(),
            },
            "check" => match &self.db {
                Some(db) => {
                    // Static diagnostics first (only when there are any, so
                    // a clean database still reports the bare verdict),
                    // then the dynamic consistency report.
                    let mut s = String::new();
                    let mut diags = db.check();
                    diags.extend(db.check_flow());
                    logres_lang::analyze::sort_diagnostics(&mut diags);
                    if !diags.is_empty() {
                        s.push_str(&logres_lang::analyze::render_all_human(&diags, None));
                        s.push('\n');
                    }
                    match db.instance() {
                        Ok((inst, _)) => match db.state().check_consistency(&inst) {
                            Ok(report) if report.is_consistent() => s.push_str("consistent"),
                            Ok(report) => {
                                s.push_str("inconsistent:\n");
                                for v in report.violations {
                                    let _ = writeln!(s, "  {v}");
                                }
                            }
                            Err(e) => {
                                let _ = write!(s, "error: {e}");
                            }
                        },
                        Err(e) => {
                            let _ = write!(s, "error: {e}");
                        }
                    }
                    s
                }
                None => "no database loaded".to_owned(),
            },
            "materialize" => match &mut self.db {
                Some(db) => match db.materialize() {
                    Ok(report) => {
                        let msg = format!(
                            "materialized: {} facts in {} steps",
                            report.facts, report.steps
                        );
                        self.last_report = Some(report);
                        msg
                    }
                    Err(e) => format!("error: {e}"),
                },
                None => "no database loaded".to_owned(),
            },
            "trace" => self.trace_command(arg),
            "profile" => self.profile_command(),
            "deadline" => self.deadline_command(arg),
            "metrics" => match &self.db {
                Some(db) => db.metrics(),
                None => "no database loaded".to_owned(),
            },
            "why" => match &self.db {
                Some(_) if arg.is_empty() => {
                    "usage: :why <fact>   e.g. :why tc(a: 1, b: 3)".to_owned()
                }
                Some(db) => match db.why_source(arg) {
                    Ok(text) => text,
                    Err(e) => format!("error: {e}"),
                },
                None => "no database loaded".to_owned(),
            },
            "explain" => self.explain_command(),
            "explain-plan" => self.explain_plan_command(arg),
            "plan" => match &self.db {
                Some(_) if arg.is_empty() => {
                    "usage: :plan <goal>   e.g. :plan tc(a: 0, b: X)".to_owned()
                }
                Some(db) => {
                    // Accept both a bare goal body and full module source.
                    let src = if arg.contains("goal") {
                        arg.to_owned()
                    } else {
                        format!("goal {}?", arg.trim_end_matches('?'))
                    };
                    match db.query_plan(&src) {
                        Ok(text) => text,
                        Err(e) => format!("error: {e}"),
                    }
                }
                None => "no database loaded".to_owned(),
            },
            other => format!("unknown command `:{other}` (try :help)"),
        };
        Step::Output(out)
    }

    fn set_mode(&mut self, mode: Mode) -> String {
        self.mode = mode;
        format!("mode set to {mode:?}")
    }

    fn trace_command(&mut self, arg: &str) -> String {
        let mut words = arg.split_whitespace();
        match (words.next().unwrap_or_default(), words.next()) {
            ("", None) => match &self.trace {
                TraceSetting::Off => "trace: off".to_owned(),
                TraceSetting::Memory => "trace: on (in memory; :trace show)".to_owned(),
                TraceSetting::Json(path) => format!("trace: json lines to {path}"),
            },
            ("on", None) => {
                self.trace = TraceSetting::Memory;
                self.sync_trace_sink();
                "tracing on (in memory; :trace show after a run)".to_owned()
            }
            ("off", None) => {
                self.trace = TraceSetting::Off;
                self.mem_tracer = None;
                self.sync_trace_sink();
                "tracing off".to_owned()
            }
            ("json", Some(path)) => match std::fs::File::create(path) {
                Ok(file) => {
                    self.trace = TraceSetting::Json(path.to_owned());
                    self.mem_tracer = None;
                    if let Some(db) = &mut self.db {
                        let mut opts = db.options().clone();
                        opts.trace = Some(Tracer::json(file));
                        db.set_options(opts);
                    }
                    format!("tracing as JSON lines to {path}")
                }
                Err(e) => format!("error opening {path}: {e}"),
            },
            ("show", None) => match &self.mem_tracer {
                Some(t) => {
                    let events = t.events();
                    if events.is_empty() {
                        "(no trace events recorded yet)".to_owned()
                    } else {
                        let mut out = String::new();
                        for ev in events {
                            let _ = writeln!(out, "{}", ev.to_json_line());
                        }
                        out
                    }
                }
                None => "tracing is not on (use :trace on first)".to_owned(),
            },
            _ => "usage: :trace [on|off|show|json <file>]".to_owned(),
        }
    }

    /// Give a freshly created database its own metrics registry, so
    /// `:metrics` reflects this session rather than the whole process.
    fn attach_metrics(&mut self) {
        if let Some(db) = &mut self.db {
            db.enable_metrics();
        }
    }

    /// Point the database's trace sink at the current setting. For the
    /// in-memory setting this installs a *fresh* sink, so each evaluation
    /// starts with an empty event list.
    fn sync_trace_sink(&mut self) {
        let Some(db) = &mut self.db else { return };
        let mut opts = db.options().clone();
        opts.trace = match self.trace {
            TraceSetting::Off => None,
            TraceSetting::Memory => {
                let t = Tracer::memory();
                self.mem_tracer = Some(t.clone());
                Some(t)
            }
            // The JSON sink persists across runs; leave it in place.
            TraceSetting::Json(_) => return,
        };
        db.set_options(opts);
    }

    fn profile_command(&self) -> String {
        let Some(report) = &self.last_report else {
            return "no evaluation has run yet".to_owned();
        };
        let mut profiles: Vec<_> = report
            .rule_profiles
            .iter()
            .filter(|p| p.firings > 0 || p.deleted > 0 || p.match_nanos > 0)
            .collect();
        if profiles.is_empty() {
            return "no rule fired in the last evaluation".to_owned();
        }
        profiles.sort_by_key(|p| std::cmp::Reverse(p.match_nanos));
        let mut out = format!(
            "{:>8} {:>8} {:>8} {:>8} {:>10}  rule\n",
            "firings", "derived", "deleted", "invented", "match ms"
        );
        for p in profiles {
            let _ = writeln!(
                out,
                "{:>8} {:>8} {:>8} {:>8} {:>10.3}  {}",
                p.firings,
                p.derived,
                p.deleted,
                p.invented,
                p.match_nanos as f64 / 1.0e6,
                p.rule
            );
        }
        if let Some(rule) = &report.cancelled_in_rule {
            let _ = writeln!(out, "cancelled while matching: {rule}");
        }
        out
    }

    /// `:explain` — a static evaluation plan: the strata rules run in, and
    /// per body literal whether the matcher can probe an index or must
    /// scan. The per-literal plan is a textual-order approximation of the
    /// matcher's greedy scheduling, erring toward scans.
    fn explain_command(&self) -> String {
        let Some(db) = &self.db else {
            return "no database loaded".to_owned();
        };
        let rules = db.rules();
        if rules.is_empty() {
            return "(no persistent rules)".to_owned();
        }
        let mut out = String::new();
        let strata: Vec<Vec<usize>> = match logres_lang::stratify(rules) {
            logres_lang::Stratification::Stratified(s) => s,
            logres_lang::Stratification::Unstratifiable { .. } => {
                let _ = writeln!(out, "unstratifiable: evaluated whole-program inflationary");
                vec![(0..rules.rules.len()).collect()]
            }
        };
        for (i, stratum) in strata.iter().enumerate() {
            let _ = writeln!(out, "stratum {i}:");
            for &idx in stratum {
                let rule = &rules.rules[idx];
                let _ = writeln!(out, "  rule #{idx}: {rule}");
                for (pred, plan) in logres_engine::rule_access_plan(db.schema(), rule) {
                    let _ = writeln!(out, "    {pred}: {plan}");
                }
            }
        }
        out
    }

    /// `:explain-plan [analyze] [goal]` — the compiled ALGRES operator
    /// trees the program lowers to (EXPLAIN), or, with `analyze`, the same
    /// trees annotated with per-operator runtime counters from a profiled
    /// evaluation (EXPLAIN ANALYZE). With no goal, the persistent rules
    /// alone are explained (or, for `analyze`, evaluated).
    fn explain_plan_command(&mut self, arg: &str) -> String {
        let Some(db) = &mut self.db else {
            return "no database loaded".to_owned();
        };
        let (analyze, rest) = match arg.strip_prefix("analyze") {
            Some(rest) => (true, rest.trim()),
            None => (false, arg),
        };
        // Accept a bare goal body, full module source, or nothing.
        let src = if rest.is_empty() || rest.contains("goal") {
            rest.to_owned()
        } else {
            format!("goal {}?", rest.trim_end_matches('?'))
        };
        let rendered = if analyze {
            db.explain_analyze_goal(&src)
        } else {
            db.explain_goal(&src)
        };
        match rendered {
            Ok(text) => text,
            Err(e) => format!("error: {e}"),
        }
    }

    fn deadline_command(&mut self, arg: &str) -> String {
        let Some(db) = &mut self.db else {
            return "no database loaded".to_owned();
        };
        match arg {
            "" => match db.options().deadline {
                Some(d) => format!("deadline: {}ms", d.as_millis()),
                None => "deadline: none".to_owned(),
            },
            "off" => {
                let mut opts = db.options().clone();
                opts.deadline = None;
                db.set_options(opts);
                "deadline cleared".to_owned()
            }
            ms => match ms.parse::<u64>() {
                Ok(ms) => {
                    let mut opts = db.options().clone();
                    opts.deadline = Some(Duration::from_millis(ms));
                    db.set_options(opts);
                    format!("deadline set to {ms}ms")
                }
                Err(_) => "usage: :deadline <ms>|off".to_owned(),
            },
        }
    }

    /// Load either a saved state or a bootstrap program.
    fn load_text(&mut self, text: &str) -> Result<String, CoreError> {
        let msg = if text.trim_start().starts_with("%%logres-state") {
            self.db = Some(Database::load(text)?);
            "state restored"
        } else {
            self.db = Some(Database::from_source(text)?);
            "program loaded"
        };
        self.attach_metrics();
        self.sync_trace_sink();
        Ok(msg.to_owned())
    }

    fn apply(&mut self, src: &str) -> String {
        if self.db.is_none() {
            // A schema-bearing first input bootstraps the database.
            return match Database::from_source(src) {
                Ok(db) => {
                    self.db = Some(db);
                    self.attach_metrics();
                    self.sync_trace_sink();
                    "database created".to_owned()
                }
                Err(e) => format!("error: {e}"),
            };
        }
        self.sync_trace_sink();
        let db = self.db.as_mut().expect("checked above");
        let is_goal_only = src
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .all(|l| l.starts_with("goal") || l.ends_with('?') || !l.contains("<-"));
        let goalish = src.contains("goal") && is_goal_only;
        let mode = if goalish { Mode::Ridi } else { self.mode };
        match db.apply_source(src, mode) {
            Ok(outcome) => {
                let mut out = String::new();
                if let Some(rows) = outcome.answer {
                    if rows.is_empty() {
                        out.push_str("(no answers)\n");
                    }
                    for row in rows {
                        let cells: Vec<String> =
                            row.iter().map(|(v, val)| format!("{v} = {val}")).collect();
                        let _ = writeln!(out, "  {}", cells.join(", "));
                    }
                } else {
                    let _ = writeln!(
                        out,
                        "applied ({:?}): {} facts, {} steps",
                        mode, outcome.report.facts, outcome.report.steps
                    );
                }
                self.last_report = Some(outcome.report);
                out
            }
            Err(CoreError::Engine(EngineError::Cancelled { cause, partial })) => {
                let msg = format!(
                    "cancelled: {cause} (partial: {} steps, {} facts; :profile for details)",
                    partial.steps, partial.facts
                );
                self.last_report = Some(*partial);
                msg
            }
            Err(e) => format!("error: {e}"),
        }
    }
}

fn facts_of(db: &Database, pred: &str) -> String {
    let Ok((inst, _)) = db.instance() else {
        return "error computing the instance".to_owned();
    };
    let p = Sym::new(&pred.to_lowercase());
    let mut out = String::new();
    match db.schema().kind(p) {
        Some(logres_model::PredKind::Assoc) => {
            let mut tuples: Vec<_> = inst.tuples_of(p).collect();
            tuples.sort();
            for t in tuples {
                let _ = writeln!(out, "  {p}{t}");
            }
        }
        Some(logres_model::PredKind::Class) => {
            let mut oids: Vec<_> = inst.oids_of(p).collect();
            oids.sort();
            for o in oids {
                if let Some(v) = inst.o_value_in(db.schema(), p, o) {
                    let _ = writeln!(out, "  {p}{v}");
                }
            }
        }
        _ => return format!("unknown predicate `{pred}`"),
    }
    if out.is_empty() {
        out.push_str("  (empty)\n");
    }
    out
}

const HELP: &str = "\
LOGRES interactive session
  :help                 this message
  :quit                 leave
  :load <file>          load a program or a saved state
  :save <file>          save the database state
  :mode [m]             show or set the module application mode
                        (ridi radi rddi ridv radv rddv; default ridv)
  :semantics <s>        inflationary | stratified
  :schema               print the schema
  :rules                print the persistent rules
  :facts <pred>         print a predicate's extension
  :check                static diagnostics (lints L001-L007 plus the
                        flow pass L008-L011) and the dynamic
                        consistency report
  :materialize          make E coincide with the instance I
  :trace [on|off|show|json <file>]
                        structured evaluation tracing (in memory, or as
                        JSON lines to a file)
  :profile              per-rule firing/derivation/invention/timing table
                        for the last evaluation, sorted by match time
                        (partial if the run was cancelled)
  :metrics              Prometheus text exposition of this session's
                        counters, gauges, and histograms
  :why <fact>           derivation chain of a fact in the instance, walked
                        back to its EDB leaves (e.g. :why tc(a: 1, b: 3))
  :explain              static plan: strata, and per body literal whether
                        the matcher probes an index or scans
  :plan <goal>          goal-directed plan: adornments, demand (magic)
                        predicates and the rewritten rules, or why the
                        goal falls back to the full fixpoint
  :explain-plan [analyze] [goal]
                        the compiled ALGRES operator trees (EXPLAIN); with
                        `analyze`, evaluate with profiling and annotate
                        every operator with rows, builds, probes, memo
                        hits, and wall time (EXPLAIN ANALYZE)
  :deadline <ms>|off    wall-clock budget for evaluations; runs that
                        exceed it stop with a partial report
Anything else is module source: it accumulates until an empty line (or a
line ending in `?`) and is then applied — goals run as RIDI queries.";

#[cfg(test)]
mod tests {
    use super::*;

    fn out(step: Step) -> String {
        match step {
            Step::Output(s) => s,
            Step::Quit => panic!("unexpected quit"),
        }
    }

    fn feed_all(repl: &mut Repl, text: &str) -> String {
        let mut acc = String::new();
        for line in text.lines() {
            acc.push_str(&out(repl.feed(line)));
        }
        acc.push_str(&out(repl.feed("")));
        acc
    }

    #[test]
    fn bootstrap_update_and_query() {
        let mut repl = Repl::new();
        let msg = feed_all(
            &mut repl,
            "associations\n  parent = (par: string, chil: string);",
        );
        assert!(msg.contains("database created"), "{msg}");

        let msg = feed_all(&mut repl, "rules\n  parent(par: \"a\", chil: \"b\") <- .");
        assert!(msg.contains("applied (Ridv)"), "{msg}");

        let msg = out(repl.feed("goal parent(par: X, chil: Y)?"));
        assert!(msg.contains("X = \"a\""), "{msg}");
        assert!(msg.contains("Y = \"b\""), "{msg}");
    }

    #[test]
    fn commands_report_state() {
        let mut repl = Repl::new();
        feed_all(
            &mut repl,
            "associations\n  p = (d: integer);\nfacts\n  p(d: 1).",
        );
        let schema = out(repl.feed(":schema"));
        assert!(schema.contains("p = (d: integer);"), "{schema}");
        let facts = out(repl.feed(":facts p"));
        assert!(facts.contains("p(d: 1)"), "{facts}");
        let check = out(repl.feed(":check"));
        assert_eq!(check, "consistent");
        let mode = out(repl.feed(":mode ridi"));
        assert!(mode.contains("Ridi"));
        assert_eq!(repl.feed(":quit"), Step::Quit);
    }

    #[test]
    fn check_prepends_static_diagnostics() {
        let mut repl = Repl::new();
        feed_all(
            &mut repl,
            "associations\n  src = (d: integer);\n  ghost = (d: integer);\n  \
             out_p = (d: integer);\nfacts\n  src(d: 1).\nrules\n  \
             out_p(d: X) <- src(d: X), ghost(d: X).",
        );
        let check = out(repl.feed(":check"));
        assert!(check.contains("warning[L001]"), "{check}");
        assert!(check.contains("warning[L002]"), "{check}");
        assert!(check.contains("0 errors, 2 warnings"), "{check}");
        // The dynamic consistency verdict still follows.
        assert!(check.ends_with("consistent"), "{check}");
    }

    #[test]
    fn save_and_load_through_files() {
        let dir = std::env::temp_dir().join("logres_repl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.lgr");
        let path_s = path.to_str().unwrap();

        let mut repl = Repl::new();
        feed_all(
            &mut repl,
            "associations\n  p = (d: integer);\nfacts\n  p(d: 7).",
        );
        let msg = out(repl.feed(&format!(":save {path_s}")));
        assert!(msg.contains("saved"), "{msg}");

        let mut repl2 = Repl::new();
        let msg = out(repl2.feed(&format!(":load {path_s}")));
        assert!(msg.contains("restored"), "{msg}");
        let facts = out(repl2.feed(":facts p"));
        assert!(facts.contains("p(d: 7)"), "{facts}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_do_not_kill_the_session() {
        let mut repl = Repl::new();
        feed_all(&mut repl, "associations\n  p = (d: integer);");
        let msg = feed_all(&mut repl, "rules\n  nosuch(x: Y) <- p(d: Y).");
        assert!(msg.contains("error"), "{msg}");
        // Still usable afterwards.
        let msg = feed_all(&mut repl, "rules\n  p(d: 3) <- .");
        assert!(msg.contains("applied"), "{msg}");
    }

    #[test]
    fn unknown_commands_are_reported() {
        let mut repl = Repl::new();
        let msg = out(repl.feed(":frobnicate"));
        assert!(msg.contains("unknown command"));
        let help = out(repl.feed(":help"));
        assert!(help.contains(":materialize"));
        assert!(help.contains(":trace"));
        assert!(help.contains(":deadline"));
    }

    #[test]
    fn trace_and_profile_follow_an_evaluation() {
        let mut repl = Repl::new();
        feed_all(&mut repl, "associations\n  p = (d: integer);");
        let msg = out(repl.feed(":trace on"));
        assert!(msg.contains("tracing on"), "{msg}");

        feed_all(&mut repl, "rules\n  p(d: 1) <- .");
        let shown = out(repl.feed(":trace show"));
        assert!(shown.contains("\"event\":\"eval_start\""), "{shown}");
        assert!(shown.contains("\"event\":\"eval_end\""), "{shown}");

        let profile = out(repl.feed(":profile"));
        assert!(profile.contains("p(d: 1) <- ."), "{profile}");

        // Each run replaces the in-memory sink: show reflects the latest
        // run only (same event count as the first, not accumulated).
        feed_all(&mut repl, "rules\n  p(d: 2) <- .");
        let shown2 = out(repl.feed(":trace show"));
        assert_eq!(
            shown2.matches("\"event\":\"eval_start\"").count(),
            shown.matches("\"event\":\"eval_start\"").count()
        );

        let msg = out(repl.feed(":trace off"));
        assert!(msg.contains("tracing off"), "{msg}");
        let shown3 = out(repl.feed(":trace show"));
        assert!(shown3.contains("not on"), "{shown3}");
    }

    const GENEALOGY: &str = "associations\n  \
        parent = (par: string, chil: string);\n  \
        anc = (a: string, d: string);\n\
        facts\n  \
        parent(par: \"adam\", chil: \"cain\").\n  \
        parent(par: \"cain\", chil: \"enoch\").\n\
        rules\n  \
        anc(a: X, d: Y) <- parent(par: X, chil: Y).\n  \
        anc(a: X, d: Z) <- parent(par: X, chil: Y), anc(a: Y, d: Z).";

    #[test]
    fn metrics_command_renders_the_session_registry() {
        let mut repl = Repl::new();
        feed_all(&mut repl, GENEALOGY);
        out(repl.feed("goal anc(a: X, d: Y)?"));
        let metrics = out(repl.feed(":metrics"));
        assert!(
            metrics.contains("# TYPE logres_eval_steps_total counter"),
            "{metrics}"
        );
        assert!(metrics.contains("logres_firings_total"), "{metrics}");
        assert!(
            metrics.contains("# TYPE logres_step_match_ms histogram"),
            "{metrics}"
        );
    }

    #[test]
    fn why_walks_derivations_and_reports_misses() {
        let mut repl = Repl::new();
        feed_all(&mut repl, GENEALOGY);
        let why = out(repl.feed(":why anc(a: \"adam\", d: \"enoch\")"));
        assert!(why.contains("via rule #"), "{why}");
        assert_eq!(why.matches("[EDB]").count(), 2, "{why}");
        let edb = out(repl.feed(":why parent(par: \"adam\", chil: \"cain\")"));
        assert!(edb.contains("[EDB]"), "{edb}");
        let missing = out(repl.feed(":why anc(a: \"enoch\", d: \"adam\")"));
        assert!(missing.contains("not in the instance"), "{missing}");
        let usage = out(repl.feed(":why"));
        assert!(usage.contains("usage"), "{usage}");
    }

    #[test]
    fn explain_shows_strata_and_access_plans() {
        let mut repl = Repl::new();
        feed_all(&mut repl, GENEALOGY);
        let plan = out(repl.feed(":explain"));
        assert!(plan.contains("stratum 0:"), "{plan}");
        assert!(plan.contains("rule #0:"), "{plan}");
        // The recursive rule binds Y through parent before reaching anc,
        // so at least one literal probes an index while others scan.
        assert!(plan.contains("probe"), "{plan}");
        assert!(plan.contains("scan"), "{plan}");
    }

    #[test]
    fn plan_shows_rewrites_and_fallbacks() {
        let mut repl = Repl::new();
        feed_all(&mut repl, GENEALOGY);
        let plan = out(repl.feed(":plan anc(a: \"adam\", d: X)"));
        assert!(plan.contains("anc[a: bound, d: free]"), "{plan}");
        assert!(plan.contains("@magic_anc"), "{plan}");
        assert!(plan.contains("demand-driven"), "{plan}");
        // A full `goal …?` form works too, and all-free goals explain the
        // fallback.
        let fallback = out(repl.feed(":plan goal anc(a: X, d: Y)?"));
        assert!(fallback.contains("full fixpoint"), "{fallback}");
        let usage = out(repl.feed(":plan"));
        assert!(usage.contains("usage"), "{usage}");
    }

    #[test]
    fn explain_plan_renders_operator_trees_and_analyze_annotates_them() {
        let mut repl = Repl::new();
        feed_all(&mut repl, GENEALOGY);
        // EXPLAIN: the compiled operator trees of the persistent rules.
        let plan = out(repl.feed(":explain-plan"));
        assert!(plan.contains("stratum 0 derives anc"), "{plan}");
        assert!(plan.contains("delta[0]:"), "{plan}");
        assert!(plan.contains("scan @delta_anc"), "{plan}");
        // EXPLAIN ANALYZE: runtime counters per operator, including the
        // driver's materialize step.
        let analyzed = out(repl.feed(":explain-plan analyze anc(a: \"adam\", d: X)"));
        assert!(analyzed.contains("[evals="), "{analyzed}");
        assert!(analyzed.contains("materialize"), "{analyzed}");
        assert!(analyzed.contains("self="), "{analyzed}");
        let help = out(repl.feed(":help"));
        assert!(help.contains(":explain-plan"), "{help}");
    }

    #[test]
    fn profile_covers_compiled_path_evaluations() {
        let mut repl = Repl::new();
        feed_all(&mut repl, GENEALOGY);
        // This goal runs on the compiled path (positive, function-free
        // fragment); :profile must still show per-rule rows.
        out(repl.feed("goal anc(a: X, d: Y)?"));
        let profile = out(repl.feed(":profile"));
        assert!(profile.contains("anc(a: X, d: Y) <- "), "{profile}");
        assert!(profile.contains("firings"), "{profile}");
    }

    #[test]
    fn profile_reports_invented_oids() {
        let mut repl = Repl::new();
        feed_all(&mut repl, "classes\n  c = (n: integer);");
        feed_all(&mut repl, "rules\n  c(self: X, n: 0) <- .");
        let profile = out(repl.feed(":profile"));
        assert!(profile.contains("invented"), "{profile}");
        let row = profile
            .lines()
            .find(|l| l.contains("c(self: X, n: 0)"))
            .expect("rule row present");
        // firings derived deleted invented — one oid invented.
        assert!(row.split_whitespace().nth(3) == Some("1"), "{row}");
    }

    #[test]
    fn deadline_cancellation_reports_partially() {
        let mut repl = Repl::new();
        feed_all(&mut repl, "classes\n  c = (n: integer);");
        let msg = out(repl.feed(":deadline 30"));
        assert!(msg.contains("30ms"), "{msg}");

        // A diverging ruleset: every step invents a fresh oid.
        let msg = feed_all(
            &mut repl,
            "rules\n  c(self: X, n: 0) <- .\n  c(self: X, n: N) <- c(n: M), N = M + 1.",
        );
        assert!(msg.contains("cancelled"), "{msg}");
        assert!(msg.contains("deadline of 30ms"), "{msg}");

        let profile = out(repl.feed(":profile"));
        assert!(profile.contains("c(self: X, n: N)"), "{profile}");

        let msg = out(repl.feed(":deadline off"));
        assert!(msg.contains("cleared"), "{msg}");
    }
}
