//! Modules and their six application modes (Section 4.1).
//!
//! A module is a triple `(R_M, S_M, G_M)`: rules, type equations, and an
//! optional goal. "The LOGRES approach to updates preserves the declarative
//! semantics of rules and puts all the control strategy into modules" —
//! *logic is in rules and control in modules*.

use logres_lang::{parse_module, Denial, Goal, RuleSet};
use logres_model::Schema;

use crate::error::CoreError;

/// The mode of application of a module: which side effects it has on the
/// database state `(E, R, S)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// *Rule Invariant, Data Invariant* — an ordinary query: `S_M` and
    /// `R_M` are visible only during this application; the state does not
    /// change; the goal is answered over `R ∪ R_M` against `E`.
    Ridi,
    /// *Rule Addition, Data Invariant* — `R_M` and `S_M` are added to the
    /// persistent IDB/schema (if the new state is consistent). The goal may
    /// be answered as in RIDI.
    Radi,
    /// *Rule Deletion, Data Invariant* — `R_M`/`S_M` are removed from the
    /// persistent IDB/schema.
    Rddi,
    /// *Rule Invariant, Data Variant* — the EDB is updated: `E'` is the
    /// result of applying the module's rules to `E`. The persistent rules
    /// are unchanged; only the `S_M` equations describing new EDB types are
    /// kept. No goal answer.
    Ridv,
    /// *Rule Addition, Data Variant* — update the EDB *and* add `R_M` to
    /// the persistent rules. No goal answer.
    Radv,
    /// *Rule Deletion, Data Variant* — remove `R_M` from the persistent
    /// rules and delete from `E` the facts `E_M` derivable by `(∅, R_M)`.
    /// No goal answer.
    Rddv,
}

impl Mode {
    /// Do applications in this mode answer the module goal?
    pub fn answers_goal(self) -> bool {
        matches!(self, Mode::Ridi | Mode::Radi | Mode::Rddi)
    }

    /// Does this mode mutate the extensional database?
    pub fn data_variant(self) -> bool {
        matches!(self, Mode::Ridv | Mode::Radv | Mode::Rddv)
    }

    /// All six modes, in the paper's order.
    pub fn all() -> [Mode; 6] {
        [
            Mode::Ridi,
            Mode::Radi,
            Mode::Rddi,
            Mode::Ridv,
            Mode::Radv,
            Mode::Rddv,
        ]
    }
}

/// A module `(R_M, S_M, G_M)` plus any passive constraints it declares.
#[derive(Debug, Clone)]
pub struct Module {
    /// `S_M` — the module's own type equations.
    pub schema: Schema,
    /// `R_M` — the module's rules.
    pub rules: RuleSet,
    /// Passive denials carried by the module.
    pub constraints: Vec<Denial>,
    /// `G_M` — the goal, if any.
    pub goal: Option<Goal>,
}

impl Module {
    /// Parse a module against the schema of the database it will be applied
    /// to. Runs the full static checks (types, safety) over `base ∪ S_M`.
    pub fn parse(src: &str, base: &Schema) -> Result<Module, CoreError> {
        let parsed = parse_module(src, base).map_err(CoreError::Lang)?;
        logres_lang::check_program(&parsed.program).map_err(CoreError::Lang)?;
        if !parsed.program.facts.is_empty() {
            return Err(CoreError::Lang(vec![logres_lang::LangError::new(
                Default::default(),
                "modules may not contain a facts section; use rules with empty bodies",
            )]));
        }
        Ok(Module {
            schema: parsed.local_schema,
            rules: parsed.program.rules,
            constraints: parsed.program.constraints,
            goal: parsed.program.goal,
        })
    }

    /// An empty module (useful as a base for programmatic construction).
    pub fn empty() -> Module {
        Module {
            schema: Schema::new(),
            rules: RuleSet::new(),
            constraints: Vec::new(),
            goal: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logres_lang::parse_program;

    fn base() -> Schema {
        parse_program(
            r#"
            associations
              parent = (par: string, chil: string);
        "#,
        )
        .unwrap()
        .schema
    }

    #[test]
    fn mode_capabilities_match_the_paper_table() {
        assert!(Mode::Ridi.answers_goal());
        assert!(Mode::Radi.answers_goal());
        assert!(Mode::Rddi.answers_goal());
        for m in [Mode::Ridv, Mode::Radv, Mode::Rddv] {
            assert!(!m.answers_goal());
            assert!(m.data_variant());
        }
        assert!(!Mode::Ridi.data_variant());
        assert_eq!(Mode::all().len(), 6);
    }

    #[test]
    fn modules_parse_against_a_base_schema() {
        let m = Module::parse(
            r#"
            associations
              ancestor = (anc: string, des: string);
            rules
              ancestor(anc: X, des: Y) <- parent(par: X, chil: Y).
            goal ancestor(anc: X, des: Y)?
        "#,
            &base(),
        )
        .expect("module parses");
        assert_eq!(m.rules.len(), 1);
        assert!(m.goal.is_some());
        assert_eq!(m.schema.assocs().count(), 1);
    }

    #[test]
    fn modules_reject_facts_sections() {
        let err = Module::parse(
            r#"
            facts
              parent(par: "a", chil: "b").
        "#,
            &base(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Lang(_)));
    }

    #[test]
    fn module_type_errors_are_caught_at_parse_time() {
        let err = Module::parse(
            r#"
            rules
              parent(par: X, chil: X) <- parent(par: X, chil: Y), Y = X + 1.
        "#,
            &base(),
        )
        .unwrap_err();
        // X is a string by schema but used in arithmetic.
        assert!(matches!(err, CoreError::Lang(_)));
    }
}
