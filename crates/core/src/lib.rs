#![warn(missing_docs)]

//! # logres
//!
//! A from-scratch reproduction of **LOGRES** — *“Integrating Object-Oriented
//! Data Modeling with a Rule-Based Programming Paradigm”* (F. Cacace,
//! S. Ceri, S. Crespi-Reghizzi, L. Tanca, R. Zicari — SIGMOD 1990).
//!
//! LOGRES integrates an object-oriented data model (classes with oids,
//! generalization hierarchies, object sharing, *and* value-based
//! associations / NF² relations) with a typed, rule-based extension of
//! Datalog that performs both queries and updates, wrapped in a **module**
//! system whose six *modes of application* control all side effects on the
//! database state.
//!
//! This crate is the user-facing surface; the substrates live in their own
//! crates:
//!
//! * [`logres_model`] — type equations, refinement, `isa`, instances,
//!   referential integrity (paper §2, Appendix A);
//! * [`logres_lang`] — the rule language: parser, type checking, safety,
//!   stratification (paper §3);
//! * [`logres_engine`] — the deterministic inflationary semantics with oid
//!   invention, plus semi-naive / stratified / compiled evaluation
//!   (Appendix B);
//! * [`algres`] — the main-memory NF² extended relational algebra the
//!   original prototype was built on (paper §1, §5).
//!
//! # Quick start
//!
//! ```
//! use logres::{Database, Mode};
//!
//! let mut db = Database::from_source(r#"
//!     associations
//!       parent   = (par: string, chil: string);
//!       ancestor = (anc: string, des: string);
//!     facts
//!       parent(par: "adam", chil: "cain").
//!       parent(par: "cain", chil: "enoch").
//! "#).expect("valid database");
//!
//! // An ordinary query: a module applied in RIDI mode.
//! let outcome = db.apply_source(r#"
//!     rules
//!       ancestor(anc: X, des: Y) <- parent(par: X, chil: Y).
//!       ancestor(anc: X, des: Z) <- parent(par: X, chil: Y),
//!                                   ancestor(anc: Y, des: Z).
//!     goal ancestor(anc: "adam", des: D)?
//! "#, Mode::Ridi).expect("query runs");
//!
//! assert_eq!(outcome.answer.expect("goal answer").len(), 2);
//! ```

pub mod database;
pub mod error;
pub mod module;
pub mod persist;
pub mod repl;
pub mod state;

pub use database::{ApplicationOutcome, Database, Rows};
pub use error::CoreError;
pub use module::{Mode, Module};
pub use state::{ConsistencyReport, DatabaseState};

// Re-export the substrate crates so downstream users need one dependency.
pub use algres;
pub use logres_engine as engine;
pub use logres_lang as lang;
pub use logres_model as model;

pub use logres_engine::{
    CancelCause, EvalOptions, EvalReport, IterationStats, OpProfile, PlanProfile, RulePlanProfile,
    RuleProfile, Semantics, TraceEvent, Tracer,
};
pub use logres_lang::{Diagnostic, Severity};
pub use logres_model::{Instance, Oid, Schema, Sym, TypeDesc, Value};
