//! E2 — the powerset program of Example 3.3 (exponential fact growth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logres::engine::{evaluate_inflationary, load_facts, EvalOptions};
use logres::lang::parse_program;
use logres::model::{Instance, OidGen};
use logres_bench::workloads::powerset_program;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_powerset");
    group.sample_size(10);
    for n in [4usize, 6, 7] {
        let p = parse_program(&powerset_program(n)).unwrap();
        let mut edb = Instance::new();
        let mut gen = OidGen::new();
        load_facts(&p.schema, &mut edb, &p.facts, &mut gen).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                evaluate_inflationary(&p.schema, &p.rules, &edb, EvalOptions::default()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
