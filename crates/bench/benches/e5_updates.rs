//! E5 — singleton updates under the persistent ancestor view: incremental
//! maintenance vs full rederivation on every update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logres::{Database, Mode};
use logres_bench::workloads::{parent_database, ANCESTOR_MODULE};

fn with_view(base: &str, incremental: bool) -> Database {
    let mut db = Database::from_source(base).unwrap();
    db.set_incremental(incremental);
    db.apply_source(ANCESTOR_MODULE, Mode::Radi).unwrap();
    // Warm the materialized view so the measurement covers maintenance,
    // not the initial build (the full path ignores this).
    db.apply_source(r#"rules parent(par: "warm", chil: "p0") <- ."#, Mode::Ridv)
        .unwrap();
    db.apply_source(r#"rules -parent(par: "warm", chil: "p0") <- ."#, Mode::Ridv)
        .unwrap();
    db
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_updates");
    group.sample_size(10);
    for n in [128usize, 512, 2_048] {
        let base = parent_database(n);
        for (name, incremental) in [("incremental", true), ("full_rederive", false)] {
            group.bench_with_input(BenchmarkId::new(name, n), &incremental, |b, &inc| {
                b.iter_batched(
                    || with_view(&base, inc),
                    |mut db| {
                        db.apply_source(r#"rules parent(par: "x", chil: "p0") <- ."#, Mode::Ridv)
                            .unwrap();
                        db.apply_source(r#"rules -parent(par: "x", chil: "p0") <- ."#, Mode::Ridv)
                            .unwrap();
                        db
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
