//! E5 — in-place RIDV update (Example 4.2) vs full rederivation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logres::{Database, Mode};
use logres_bench::workloads::{kv_database, UPDATE_MODULE};

const REDERIVE: &str = r#"
    associations
      q = (d1: integer, d2: integer);
    rules
      q(d1: X, d2: Z) <- p(d1: X, d2: Y), even(X), Z = Y + 1.
      q(d1: X, d2: Y) <- p(d1: X, d2: Y), odd(X).
"#;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_updates");
    group.sample_size(10);
    for n in [500usize, 2_000] {
        let base = kv_database(n);
        for (name, module) in [
            ("ridv_in_place", UPDATE_MODULE),
            ("full_rederive", REDERIVE),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &module, |b, module| {
                b.iter_batched(
                    || Database::from_source(&base).unwrap(),
                    |mut db| db.apply_source(module, Mode::Ridv).unwrap(),
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
