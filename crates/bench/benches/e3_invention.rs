//! E3 — deterministic oid invention over deduplicated pairs (Example 3.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logres::engine::{evaluate_inflationary, load_facts, EvalOptions};
use logres::lang::parse_program;
use logres::model::{Instance, OidGen};
use logres_bench::workloads::ip_program;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_invention");
    group.sample_size(10);
    for (n, dup) in [(100usize, 10usize), (200, 50)] {
        let p = parse_program(&ip_program(n, dup, 42)).unwrap();
        let mut edb = Instance::new();
        let mut gen = OidGen::new();
        load_facts(&p.schema, &mut edb, &p.facts, &mut gen).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_dup{dup}")),
            &n,
            |b, _| {
                b.iter(|| {
                    evaluate_inflationary(&p.schema, &p.rules, &edb, EvalOptions::default())
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
