//! E10 — the football workload: end-to-end language queries and the
//! selection-pushdown ablation.

use algres::{AlgExpr, CmpOp, Pred as APred, Scalar};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logres::engine::env_from_instance;
use logres::model::{Sym, Value};
use logres::{Database, Mode};
use logres_bench::workloads::football_program;

fn league(teams: usize) -> Database {
    let mut db = Database::from_source(
        r#"
        classes
          team = (team_name: string, city: string);
        associations
          game = (h_team: team, g_team: team, day: integer,
                  home_goals: integer, guest_goals: integer);
    "#,
    )
    .unwrap();
    let src = football_program(teams, 5);
    let rules_at = src.find("rules").unwrap();
    db.apply_source(&src[rules_at..], Mode::Ridv).unwrap();
    db
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_football");
    group.sample_size(10);
    let teams = 10usize;
    let mut db = league(teams);

    group.bench_with_input(BenchmarkId::new("q1_language", teams), &teams, |b, _| {
        b.iter(|| {
            db.query(
                r#"goal game(h_team: H, g_team: G, home_goals: HG, guest_goals: GG),
                        team(self: H, team_name: "t0"),
                        HG > GG?"#,
            )
            .unwrap()
        })
    });

    let (inst, _) = db.instance().unwrap();
    let env = env_from_instance(db.schema(), &inst);
    let join = AlgExpr::Rel(Sym::new("game"))
        .rename("g_team", "mid")
        .rename("day", "day1")
        .rename("home_goals", "hg1")
        .rename("guest_goals", "gg1")
        .join(
            AlgExpr::Rel(Sym::new("game"))
                .rename("h_team", "mid")
                .rename("g_team", "far")
                .rename("day", "day2")
                .rename("home_goals", "hg2")
                .rename("guest_goals", "gg2"),
        )
        .select(APred::Cmp(
            CmpOp::Eq,
            Scalar::col("day1"),
            Scalar::Const(Value::Int(1)),
        ));
    let catalog = |name| env.get(name).map(|r: &algres::Relation| r.cols().to_vec());
    let optimized = algres::push_selections_with(join.clone(), &catalog);

    group.bench_with_input(BenchmarkId::new("q3_no_pushdown", teams), &teams, |b, _| {
        b.iter(|| algres::eval(&join, &env).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("q3_pushdown", teams), &teams, |b, _| {
        b.iter(|| algres::eval(&optimized, &env).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
