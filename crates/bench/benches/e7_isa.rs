//! E7 — isa hierarchies: membership propagation and superclass queries vs
//! chain depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logres::engine::{evaluate_inflationary, load_facts, EvalOptions};
use logres::lang::parse_program;
use logres::model::{Instance, OidGen};
use logres_bench::workloads::isa_chain_program;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_isa");
    group.sample_size(10);
    for depth in [2usize, 8] {
        let p = parse_program(&isa_chain_program(depth, 100)).unwrap();
        let mut edb = Instance::new();
        let mut gen = OidGen::new();
        load_facts(&p.schema, &mut edb, &p.facts, &mut gen).unwrap();
        group.bench_with_input(
            BenchmarkId::new("create_propagate", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    evaluate_inflationary(&p.schema, &p.rules, &edb, EvalOptions::default())
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
