//! E1 — transitive closure: interpreter vs semi-naive vs compiled (naive
//! and delta ALGRES fixpoints).

use algres::FixpointMode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logres::engine::{
    compile_ruleset, evaluate_inflationary, evaluate_seminaive, load_facts, EvalOptions,
};
use logres::lang::parse_program;
use logres::model::{Instance, OidGen};
use logres_bench::workloads::{chain_edges, closure_program};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_closure");
    group.sample_size(10);
    for n in [32usize, 64] {
        let src = closure_program(&chain_edges(n));
        let p = parse_program(&src).unwrap();
        let mut edb = Instance::new();
        let mut gen = OidGen::new();
        load_facts(&p.schema, &mut edb, &p.facts, &mut gen).unwrap();

        group.bench_with_input(BenchmarkId::new("interpreter", n), &n, |b, _| {
            b.iter(|| {
                evaluate_inflationary(&p.schema, &p.rules, &edb, EvalOptions::default()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| {
                evaluate_seminaive(&p.schema, &p.rules, &edb, EvalOptions::default()).unwrap()
            })
        });
        for (mode, name) in [
            (FixpointMode::Naive, "compiled_naive"),
            (FixpointMode::Delta, "compiled_delta"),
        ] {
            let compiled = compile_ruleset(&p.schema, &p.rules, mode).unwrap();
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| compiled.run(&p.schema, &edb).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
