//! E1 — transitive closure: interpreter (serial and parallel) vs semi-naive
//! vs compiled (naive and delta ALGRES fixpoints). The interpreter path
//! probes the instance's first-bound-argument index, so this benchmark also
//! attributes the indexing win versus the historical full-scan numbers.

use algres::FixpointMode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logres::engine::{
    compile_ruleset, evaluate_inflationary, evaluate_seminaive, load_facts, EvalOptions,
};
use logres::lang::parse_program;
use logres::model::{Instance, OidGen};
use logres_bench::workloads::{chain_edges, closure_program};

/// `relations` independent chain closures in one program: 2·relations rules
/// whose per-step body matching is embarrassingly parallel.
fn wide_closure_program(relations: usize, n: usize) -> String {
    let mut assocs = String::new();
    let mut facts = String::new();
    let mut rules = String::new();
    for r in 0..relations {
        assocs.push_str(&format!(
            "  e{r}  = (a: integer, b: integer);\n  tc{r} = (a: integer, b: integer);\n"
        ));
        for (a, b) in chain_edges(n) {
            facts.push_str(&format!("  e{r}(a: {a}, b: {b}).\n"));
        }
        rules.push_str(&format!(
            "  tc{r}(a: X, b: Y) <- e{r}(a: X, b: Y).\n  \
               tc{r}(a: X, b: Z) <- tc{r}(a: X, b: Y), e{r}(a: Y, b: Z).\n"
        ));
    }
    format!("associations\n{assocs}facts\n{facts}rules\n{rules}")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_closure");
    group.sample_size(10);
    for n in [32usize, 64] {
        let src = closure_program(&chain_edges(n));
        let p = parse_program(&src).unwrap();
        let mut edb = Instance::new();
        let mut gen = OidGen::new();
        load_facts(&p.schema, &mut edb, &p.facts, &mut gen).unwrap();

        group.bench_with_input(BenchmarkId::new("interpreter", n), &n, |b, _| {
            b.iter(|| {
                evaluate_inflationary(&p.schema, &p.rules, &edb, EvalOptions::default()).unwrap()
            })
        });
        let par_opts = EvalOptions {
            threads: 0, // one per core
            ..EvalOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("interpreter_par", n), &n, |b, _| {
            b.iter(|| evaluate_inflationary(&p.schema, &p.rules, &edb, par_opts.clone()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| {
                evaluate_seminaive(&p.schema, &p.rules, &edb, EvalOptions::default()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("seminaive_par", n), &n, |b, _| {
            b.iter(|| evaluate_seminaive(&p.schema, &p.rules, &edb, par_opts.clone()).unwrap())
        });
        for (mode, name) in [
            (FixpointMode::Naive, "compiled_naive"),
            (FixpointMode::Delta, "compiled_delta"),
        ] {
            let compiled = compile_ruleset(&p.schema, &p.rules, mode).unwrap();
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| compiled.run(&p.schema, &edb).unwrap())
            });
        }
    }

    // Wide workload: many independent rules, where the per-rule match phase
    // parallelizes.
    {
        let relations = 8;
        let src = wide_closure_program(relations, 32);
        let p = parse_program(&src).unwrap();
        let mut edb = Instance::new();
        let mut gen = OidGen::new();
        load_facts(&p.schema, &mut edb, &p.facts, &mut gen).unwrap();
        for (name, threads) in [("wide_serial", 1usize), ("wide_par", 0)] {
            let opts = EvalOptions {
                threads,
                ..EvalOptions::default()
            };
            group.bench_with_input(BenchmarkId::new(name, relations), &relations, |b, _| {
                b.iter(|| evaluate_inflationary(&p.schema, &p.rules, &edb, opts.clone()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
