//! E4 — the six module application modes on the same module and base.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logres::Mode;
use logres_bench::workloads::{e4_setup, parent_database};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_modes");
    group.sample_size(10);
    let base = parent_database(200);
    for mode in Mode::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter_batched(
                    || e4_setup(&base, mode),
                    |(mut db, module)| db.apply(&module, mode).unwrap(),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
