//! E9 — nested relations: data functions (Example 3.2) vs the ALGRES nest
//! operator.

use algres::{AlgExpr, FixpointMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logres::engine::{compile_ruleset, env_from_instance, evaluate, load_facts, EvalOptions};
use logres::lang::parse_program;
use logres::model::{Instance, OidGen, Sym};
use logres::Semantics;
use logres_bench::workloads::{chain_edges, closure_program, genealogy_program};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_nesting");
    group.sample_size(10);
    let n = 48usize;

    let p = parse_program(&genealogy_program(n)).unwrap();
    let mut edb = Instance::new();
    let mut gen = OidGen::new();
    load_facts(&p.schema, &mut edb, &p.facts, &mut gen).unwrap();
    group.bench_with_input(BenchmarkId::new("data_functions", n), &n, |b, _| {
        b.iter(|| {
            evaluate(
                &p.schema,
                &p.rules,
                &edb,
                Semantics::Stratified,
                EvalOptions::default(),
            )
            .unwrap()
        })
    });

    let flat = parse_program(&closure_program(&chain_edges(n))).unwrap();
    let mut edb2 = Instance::new();
    let mut gen2 = OidGen::new();
    load_facts(&flat.schema, &mut edb2, &flat.facts, &mut gen2).unwrap();
    group.bench_with_input(BenchmarkId::new("algres_nest", n), &n, |b, _| {
        b.iter(|| {
            let compiled = compile_ruleset(&flat.schema, &flat.rules, FixpointMode::Delta).unwrap();
            let out = compiled.run(&flat.schema, &edb2).unwrap();
            let env = env_from_instance(&flat.schema, &out);
            let nest = AlgExpr::Nest {
                input: Box::new(AlgExpr::Rel(Sym::new("tc"))),
                cols: vec![Sym::new("b")],
                into: Sym::new("des"),
            };
            algres::eval(&nest, &env).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
