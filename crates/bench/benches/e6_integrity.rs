//! E6 — referential integrity constraints generated from type equations:
//! cost of checking after bulk insertion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logres::model::{integrity, Instance, Oid, Sym, Value};
use logres_bench::workloads::{e6_fixture, e6_schema};

fn bench(c: &mut Criterion) {
    let s = e6_schema();
    let constraints = integrity::generate(&s);
    let teams = 64u64;
    let mut base = Instance::new();
    for o in 0..teams {
        base.insert_object(
            &s,
            Sym::new("team"),
            Oid(o),
            Value::tuple([("name", Value::str(format!("t{o}")))]),
        );
    }
    let mut group = c.benchmark_group("e6_integrity");
    group.sample_size(10);
    for n in [1_000usize, 4_000] {
        let mut inst = base.clone();
        for i in 0..n {
            inst.insert_assoc(Sym::new("fixture"), e6_fixture(i, teams, 0));
        }
        group.bench_with_input(BenchmarkId::new("check", n), &n, |b, _| {
            b.iter(|| integrity::check(&s, &inst, &constraints))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
