//! E8 — inflationary vs stratified evaluation on stratified negation
//! programs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logres::engine::{evaluate, load_facts, EvalOptions};
use logres::lang::parse_program;
use logres::model::{Instance, OidGen};
use logres::Semantics;
use logres_bench::workloads::strata_program;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_semantics");
    group.sample_size(10);
    for k in [2usize, 4] {
        let p = parse_program(&strata_program(k, 128)).unwrap();
        let mut edb = Instance::new();
        let mut gen = OidGen::new();
        load_facts(&p.schema, &mut edb, &p.facts, &mut gen).unwrap();
        for (sem, name) in [
            (Semantics::Inflationary, "inflationary"),
            (Semantics::Stratified, "stratified"),
        ] {
            group.bench_with_input(BenchmarkId::new(name, k), &sem, |b, &sem| {
                b.iter(|| evaluate(&p.schema, &p.rules, &edb, sem, EvalOptions::default()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
