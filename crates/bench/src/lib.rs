#![warn(missing_docs)]

//! # logres-bench
//!
//! Workload generators and experiment runners for the LOGRES reproduction.
//!
//! The paper (SIGMOD 1990) is a design overview and publishes **no
//! measured tables or figures**; the experiment suite E1–E11 defined in
//! DESIGN.md §4 turns every worked example and every performance-relevant
//! prose claim into a measured table. Each experiment exists twice:
//!
//! * as a Criterion bench target under `benches/` (statistical timing of
//!   the core comparison at a fixed size);
//! * as a row generator in [`experiments`], used by the `tables` binary to
//!   print the full parameter sweeps recorded in EXPERIMENTS.md
//!   (`cargo run -p logres-bench --release --bin tables`).

pub mod experiments;
pub mod table;
pub mod workloads;

pub use table::Table;
