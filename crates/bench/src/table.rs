//! Minimal table rendering for the experiment harness.

use std::fmt;

/// A printable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id and title, e.g. "E1 — transitive closure".
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:w$} |", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

/// Format a duration in human-readable micro/milliseconds.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2} s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_with_aligned_columns() {
        let mut t = Table::new("E0 — demo", &["n", "time"]);
        t.row(vec!["10".into(), "1 ms".into()]);
        t.row(vec!["1000".into(), "12 ms".into()]);
        let s = t.to_string();
        assert!(s.contains("## E0 — demo"));
        assert!(s.contains("| n    | time  |"));
    }

    #[test]
    fn durations_format_by_magnitude() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12 µs");
        assert_eq!(fmt_duration(Duration::from_micros(2_500)), "2.50 ms");
        assert_eq!(fmt_duration(Duration::from_micros(3_200_000)), "3.20 s");
    }
}
