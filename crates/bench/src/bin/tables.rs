//! Regenerate every experiment table (E1–E13) for EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! cargo run -p logres-bench --release --bin tables            # all tables
//! cargo run -p logres-bench --release --bin tables -- e1 e4   # a subset
//! cargo run -p logres-bench --release --bin tables -- --deadline-ms 5000
//! cargo run -p logres-bench --release --bin tables -- e1 --metrics
//! ```
//!
//! `--deadline-ms <n>` gives every experiment evaluation a wall-clock
//! budget via the governor: a run that exceeds it aborts with a structured
//! cancellation instead of hanging the sweep (useful as a CI smoke test).
//!
//! `--metrics` records every experiment evaluation on a shared registry
//! and prints its Prometheus text exposition after the sweep.

use logres_bench::experiments;

fn main() {
    let mut filter: Vec<String> = Vec::new();
    let mut metrics = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--deadline-ms" {
            let ms: u64 = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--deadline-ms takes a number of milliseconds");
            experiments::set_deadline(std::time::Duration::from_millis(ms));
        } else if arg == "--metrics" {
            metrics = Some(experiments::enable_metrics());
        } else {
            filter.push(arg);
        }
    }
    println!("# LOGRES reproduction — experiment tables\n");
    for (id, run) in experiments::all() {
        if !filter.is_empty() && !filter.iter().any(|f| f == id) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let table = run();
        println!("{table}");
        println!("_({id} regenerated in {:.2?})_\n", t0.elapsed());
    }
    if let Some(registry) = metrics {
        println!("## Metrics (Prometheus text exposition)\n");
        println!("```");
        print!("{}", registry.render_text());
        println!("```");
    }
}
