//! Regenerate every experiment table (E1–E10) for EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! cargo run -p logres-bench --release --bin tables            # all tables
//! cargo run -p logres-bench --release --bin tables -- e1 e4   # a subset
//! ```

use logres_bench::experiments;

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    println!("# LOGRES reproduction — experiment tables\n");
    for (id, run) in experiments::all() {
        if !filter.is_empty() && !filter.iter().any(|f| f == id) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let table = run();
        println!("{table}");
        println!("_({id} regenerated in {:.2?})_\n", t0.elapsed());
    }
}
