//! Experiment runners E1–E16 (DESIGN.md §4): each returns a printable
//! [`Table`] whose rows are recorded in EXPERIMENTS.md.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use algres::{AggFun, AlgExpr, CmpOp, FixpointMode, Pred as APred, Scalar};
use logres::engine::{
    answer_goal, compile_program, compile_program_with, compile_ruleset, env_from_instance,
    evaluate, evaluate_demand, evaluate_inflationary, evaluate_seminaive, load_facts, run_compiled,
    EvalOptions, MetricsRegistry,
};
use logres::lang::analyze::{flow_program, infer, render_all_json, seeds_from_instance};
use logres::lang::parse_program;
use logres::model::{integrity, Instance, OidGen, Sym, Value};
use logres::{Database, Mode, Semantics};

use crate::table::{fmt_duration, Table};
use crate::workloads::*;

fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed(), r)
}

/// Best-of-`runs` timing for sub-10ms measurements, where a single shot on a
/// shared runner is mostly scheduler noise.
fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let (mut d_best, mut r_best) = time(&mut f);
    for _ in 1..runs {
        let (d, r) = time(&mut f);
        if d < d_best {
            d_best = d;
            r_best = r;
        }
    }
    (d_best, r_best)
}

static DEADLINE: OnceLock<Duration> = OnceLock::new();
static METRICS: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();

/// Give every experiment evaluation a wall-clock deadline (the `tables`
/// binary's `--deadline-ms` flag). Call once, before running experiments;
/// a tripped deadline aborts the run with [`logres::engine::EngineError::Cancelled`]
/// rather than hanging a sweep.
pub fn set_deadline(d: Duration) {
    let _ = DEADLINE.set(d);
}

/// Record metrics for every experiment evaluation on a shared registry
/// (the `tables` binary's `--metrics` flag). Call once, before running
/// experiments; returns the registry for rendering after the sweep.
pub fn enable_metrics() -> Arc<MetricsRegistry> {
    METRICS
        .get_or_init(|| Arc::new(MetricsRegistry::new()))
        .clone()
}

/// The options experiment evaluations run under: defaults, plus the
/// process-wide deadline when one was set via [`set_deadline`] and the
/// shared registry when [`enable_metrics`] was called.
pub fn bench_opts() -> EvalOptions {
    EvalOptions {
        deadline: DEADLINE.get().copied(),
        metrics: METRICS.get().cloned(),
        ..EvalOptions::default()
    }
}

fn loaded(src: &str) -> (logres::Schema, Instance, logres::lang::RuleSet) {
    let p = parse_program(src).expect("workload parses");
    let mut edb = Instance::new();
    let mut gen = OidGen::new();
    load_facts(&p.schema, &mut edb, &p.facts, &mut gen).expect("workload loads");
    (p.schema, edb, p.rules)
}

/// An experiment runner: regenerates one table.
pub type Runner = fn() -> Table;

/// All experiments by id.
pub fn all() -> Vec<(&'static str, Runner)> {
    vec![
        ("e1", e1_closure as Runner),
        ("e2", e2_powerset),
        ("e3", e3_invention),
        ("e4", e4_modes),
        ("e5", e5_updates),
        ("e6", e6_integrity),
        ("e7", e7_isa),
        ("e8", e8_semantics),
        ("e9", e9_nesting),
        ("e10", e10_football),
        ("e11", e11_governor),
        ("e12", e12_observability),
        ("e13", e13_goal_directed),
        ("e14", e14_compiled_path),
        ("e15", e15_plan_profiling),
        ("e16", e16_flow_analysis),
    ]
}

/// E1 — transitive closure: naive interpreter vs semi-naive vs
/// ALGRES-compiled (naive and delta fixpoints). Claim (paper §1, §5): the
/// switchable ALGRES closure makes semi-naive evaluation a drop-in; shape:
/// semi-naive/delta win by a factor growing with the recursion depth.
pub fn e1_closure() -> Table {
    let mut t = Table::new(
        "E1 — transitive closure over chains and random graphs",
        &["workload", "n", "engine", "time", "tc tuples"],
    );
    let opts = bench_opts();
    let mut run = |workload: &str, edges: Vec<(i64, i64)>, heavy_engines: bool| {
        let n = edges.len();
        let src = closure_program(&edges);
        let (schema, edb, rules) = loaded(&src);
        let tc = Sym::new("tc");

        if heavy_engines {
            let (d, (inst, _)) =
                time(|| evaluate_inflationary(&schema, &rules, &edb, opts.clone()).expect("naive"));
            t.row(vec![
                workload.into(),
                n.to_string(),
                "interpreter (naive)".into(),
                fmt_duration(d),
                inst.assoc_len(tc).to_string(),
            ]);
        }
        let (d, (inst, _)) =
            time(|| evaluate_seminaive(&schema, &rules, &edb, opts.clone()).expect("semi-naive"));
        t.row(vec![
            workload.into(),
            n.to_string(),
            "semi-naive".into(),
            fmt_duration(d),
            inst.assoc_len(tc).to_string(),
        ]);
        for (mode, name) in [
            (FixpointMode::Naive, "compiled (naive fixpoint)"),
            (FixpointMode::Delta, "compiled (delta fixpoint)"),
        ] {
            if mode == FixpointMode::Naive && !heavy_engines {
                continue;
            }
            let compiled = compile_ruleset(&schema, &rules, mode).expect("compiles");
            let (d, out) = time(|| compiled.run(&schema, &edb).expect("compiled runs"));
            t.row(vec![
                workload.into(),
                n.to_string(),
                name.into(),
                fmt_duration(d),
                out.assoc_len(tc).to_string(),
            ]);
        }
    };
    for n in [32, 64, 128] {
        run("chain", chain_edges(n), true);
    }
    for n in [256, 512] {
        run("chain", chain_edges(n), false);
    }
    run("random(64 nodes)", random_edges(64, 128, 11), true);
    t
}

/// E2 — the powerset program (Example 3.3): facts and runtime double with
/// every added element (exponential shape).
pub fn e2_powerset() -> Table {
    let mut t = Table::new(
        "E2 — powerset of {1..n} (Example 3.3)",
        &["n", "subsets", "time", "steps"],
    );
    for n in 4..=8 {
        let (schema, edb, rules) = loaded(&powerset_program(n));
        let (d, (inst, report)) = time(|| {
            evaluate_inflationary(&schema, &rules, &edb, bench_opts()).expect("powerset evaluates")
        });
        t.row(vec![
            n.to_string(),
            inst.assoc_len(Sym::new("power")).to_string(),
            fmt_duration(d),
            report.steps.to_string(),
        ]);
    }
    t
}

/// E3 — oid invention (Example 3.4): the association deduplicates pairs;
/// one IP object is invented per surviving tuple. Sweep the duplicate-name
/// ratio; claim (§2.1): associations give explicit duplicate control.
pub fn e3_invention() -> Table {
    let mut t = Table::new(
        "E3 — interesting pairs: dedup via association + oid invention",
        &["employees", "dup %", "pair tuples", "ip objects", "time"],
    );
    for (n, dup) in [(100, 10), (100, 50), (400, 10), (400, 50), (800, 25)] {
        let (schema, edb, rules) = loaded(&ip_program(n, dup, 42));
        let (d, (inst, _)) = time(|| {
            evaluate_inflationary(&schema, &rules, &edb, bench_opts()).expect("ip evaluates")
        });
        t.row(vec![
            n.to_string(),
            dup.to_string(),
            inst.assoc_len(Sym::new("pair")).to_string(),
            inst.class_len(Sym::new("ip")).to_string(),
            fmt_duration(d),
        ]);
    }
    t
}

/// E4 — the six module application modes on the same module and base
/// database (Section 4.1): cost of the mode, state deltas it leaves behind.
pub fn e4_modes() -> Table {
    let mut t = Table::new(
        "E4 — module application modes (ancestor module, 500-tuple base)",
        &["mode", "time", "rules after", "E tuples after", "answers"],
    );
    let base = parent_database(500);
    for mode in Mode::all() {
        let (mut db, module) = e4_setup(&base, mode);
        let (d, out) = time(|| db.apply(&module, mode).expect("mode applies"));
        let e_count: usize =
            db.edb().assoc_len(Sym::new("parent")) + db.edb().assoc_len(Sym::new("ancestor"));
        t.row(vec![
            format!("{mode:?}").to_uppercase(),
            fmt_duration(d),
            db.rules().len().to_string(),
            e_count.to_string(),
            out.answer.map_or("—".into(), |a| a.len().to_string()),
        ]);
    }
    t
}

/// How many insert/delete cycles one E5 measurement runs. Each cycle is two
/// module applications (a singleton RIDV insert and the RDDV delete undoing
/// it), so the database returns to its starting state between cycles.
const E5_ROUNDS: usize = 16;

/// E5 — update throughput under the persistent ancestor view: incremental
/// maintenance (counting + Delete-and-Rederive behind RIDV/RDDV) vs full
/// rederivation of the instance on every update. Claim (DESIGN.md §11):
/// maintenance work is proportional to the change — one chain of the forest
/// — so updates/s should hold roughly flat while the full path degrades
/// linearly in n.
pub fn e5_updates() -> Table {
    let mut t = Table::new(
        "E5 — singleton updates under the ancestor view: incremental vs full rederivation",
        &[
            "n",
            "strategy",
            "time",
            "updates/s",
            "E tuples after",
            "speedup",
        ],
    );
    let mut speedup_512 = None;
    for n in [128usize, 512, 2_048] {
        let setup = |incremental: bool| -> Database {
            let mut db = Database::from_source(&parent_database(n)).expect("base loads");
            db.set_options(bench_opts());
            db.set_incremental(incremental);
            db.apply_source(ANCESTOR_MODULE, Mode::Radi)
                .expect("view installs");
            db
        };
        // Each cycle prepends a fresh edge to one chain (so the recursive
        // ancestor rules really fire) and then deletes it again.
        let cycle = |db: &mut Database, i: usize| {
            let root = (i % (n / 10).max(1)) * 1000;
            let ins = format!(r#"rules parent(par: "e5x", chil: "p{root}") <- ."#);
            let del = format!(r#"rules -parent(par: "e5x", chil: "p{root}") <- ."#);
            db.apply_source(&ins, Mode::Ridv).expect("insert applies");
            db.apply_source(&del, Mode::Ridv).expect("delete applies");
        };

        let mut inc = setup(true);
        let (d_inc, ()) = time(|| (0..E5_ROUNDS).for_each(|i| cycle(&mut inc, i)));
        let mut full = setup(false);
        let (d_full, ()) = time(|| (0..E5_ROUNDS).for_each(|i| cycle(&mut full, i)));
        assert_eq!(
            inc.edb(),
            full.edb(),
            "incremental and full paths must agree after the cycles"
        );

        let updates = (2 * E5_ROUNDS) as f64;
        let speedup = d_full.as_secs_f64() / d_inc.as_secs_f64().max(f64::EPSILON);
        if n == 512 {
            speedup_512 = Some(speedup);
        }
        let e_after = inc.edb().assoc_len(Sym::new("parent"));
        t.row(vec![
            n.to_string(),
            "incremental".into(),
            fmt_duration(d_inc),
            format!("{:.0}", updates / d_inc.as_secs_f64().max(f64::EPSILON)),
            e_after.to_string(),
            format!("{speedup:.1}x"),
        ]);
        t.row(vec![
            n.to_string(),
            "full rederive".into(),
            fmt_duration(d_full),
            format!("{:.0}", updates / d_full.as_secs_f64().max(f64::EPSILON)),
            full.edb().assoc_len(Sym::new("parent")).to_string(),
            "—".into(),
        ]);
    }

    if let Ok(min) = std::env::var("LOGRES_E5_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("LOGRES_E5_MIN_SPEEDUP is a factor");
        let got = speedup_512.expect("n=512 rows ran");
        assert!(
            got >= min,
            "n=512 incremental speedup {got:.1}x is below LOGRES_E5_MIN_SPEEDUP={min}x"
        );
    }
    t
}

/// E6 — cost of the referential integrity constraints generated from type
/// equations (§2.1): insertion throughput with and without checking, with
/// a swept share of dangling references.
pub fn e6_integrity() -> Table {
    let mut t = Table::new(
        "E6 — generated referential integrity: checking cost and violations",
        &[
            "fixtures",
            "dangling %",
            "insert",
            "insert + check",
            "violations",
        ],
    );
    let schema = e6_schema();
    let constraints = integrity::generate(&schema);
    let teams = 64u64;

    for (n, dangling_pct) in [(2_000usize, 0usize), (2_000, 5), (8_000, 0), (8_000, 5)] {
        let mut base = Instance::new();
        for o in 0..teams {
            base.insert_object(
                &schema,
                Sym::new("team"),
                logres::Oid(o),
                Value::tuple([("name", Value::str(format!("t{o}")))]),
            );
        }
        let tuples: Vec<Value> = (0..n).map(|i| e6_fixture(i, teams, dangling_pct)).collect();

        let (d_plain, _) = time(|| {
            let mut i = base.clone();
            for tu in &tuples {
                i.insert_assoc(Sym::new("fixture"), tu.clone());
            }
            i
        });
        let (d_checked, violations) = time(|| {
            let mut i = base.clone();
            for tu in &tuples {
                i.insert_assoc(Sym::new("fixture"), tu.clone());
            }
            integrity::check(&schema, &i, &constraints).len()
        });
        t.row(vec![
            n.to_string(),
            dangling_pct.to_string(),
            fmt_duration(d_plain),
            fmt_duration(d_checked),
            violations.to_string(),
        ]);
    }
    t
}

/// E7 — generalization hierarchies: membership propagation π(C) ⊆ π(C′)
/// along isa chains of growing depth, and querying through the top class.
pub fn e7_isa() -> Table {
    let mut t = Table::new(
        "E7 — isa chains: object creation and superclass queries vs depth",
        &[
            "depth",
            "objects",
            "create+propagate",
            "top-class query",
            "π(c0) size",
        ],
    );
    for depth in [2usize, 4, 8, 12] {
        let n = 200;
        let (schema, edb, rules) = loaded(&isa_chain_program(depth, n));
        let (d_create, (inst, _)) = time(|| {
            evaluate_inflationary(&schema, &rules, &edb, bench_opts()).expect("objects create")
        });
        let goal_src = "goal c0(a0: V)?";
        let p = logres::lang::parse_rules(goal_src, &schema).expect("goal parses");
        let goal = p.goal.expect("has goal");
        let (d_query, rows) =
            time(|| logres::engine::answer_goal(&schema, &inst, &goal).expect("query runs"));
        t.row(vec![
            depth.to_string(),
            n.to_string(),
            fmt_duration(d_create),
            fmt_duration(d_query),
            inst.class_len(Sym::new("c0")).to_string(),
        ]);
        assert_eq!(rows.len(), n);
    }
    t
}

/// E8 — semantics parametricity (§3.1, §4.1): the same stratified program
/// under inflationary vs. stratified evaluation. Stratified is the intended
/// (perfect) model; inflationary fires negation eagerly and keeps the
/// extra tuples.
pub fn e8_semantics() -> Table {
    let mut t = Table::new(
        "E8 — inflationary vs stratified on k-strata negation programs",
        &["strata", "facts", "semantics", "time", "final-layer tuples"],
    );
    for k in [2usize, 4, 8] {
        let n = 256;
        let src = strata_program(k, n);
        let (schema, edb, rules) = loaded(&src);
        let last = Sym::new(&format!("l{k}"));
        for (sem, name) in [
            (Semantics::Inflationary, "inflationary"),
            (Semantics::Stratified, "stratified"),
        ] {
            let (d, (inst, _)) = time(|| {
                logres::engine::evaluate(&schema, &rules, &edb, sem, bench_opts())
                    .expect("evaluates")
            });
            t.row(vec![
                k.to_string(),
                n.to_string(),
                name.into(),
                fmt_duration(d),
                inst.assoc_len(last).to_string(),
            ]);
        }
    }
    t
}

/// E9 — building nested relations: data functions (Example 3.2, stratified)
/// vs the ALGRES `nest` operator over a pre-computed closure.
pub fn e9_nesting() -> Table {
    let mut t = Table::new(
        "E9 — nested ANCESTOR: data functions vs ALGRES nest",
        &["chain n", "method", "time", "nested rows"],
    );
    for n in [32usize, 64, 128] {
        // Method A: the paper's data-function program, perfect-model.
        let (schema, edb, rules) = loaded(&genealogy_program(n));
        let (d, (inst, _)) = time(|| {
            logres::engine::evaluate(&schema, &rules, &edb, Semantics::Stratified, bench_opts())
                .expect("genealogy evaluates")
        });
        t.row(vec![
            n.to_string(),
            "data functions".into(),
            fmt_duration(d),
            inst.assoc_len(Sym::new("ancestor")).to_string(),
        ]);

        // Method B: flat closure compiled to ALGRES, then one nest.
        let flat_src = closure_program(&(0..n as i64).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let (schema2, edb2, rules2) = loaded(&flat_src);
        let (d, nested_len) = time(|| {
            let compiled =
                compile_ruleset(&schema2, &rules2, FixpointMode::Delta).expect("compiles");
            let out = compiled.run(&schema2, &edb2).expect("closure runs");
            let env = env_from_instance(&schema2, &out);
            let nest = AlgExpr::Nest {
                input: Box::new(AlgExpr::Rel(Sym::new("tc"))),
                cols: vec![Sym::new("b")],
                into: Sym::new("des"),
            };
            algres::eval(&nest, &env).expect("nest runs").len()
        });
        t.row(vec![
            n.to_string(),
            "algres nest".into(),
            fmt_duration(d),
            nested_len.to_string(),
        ]);
    }
    t
}

/// E10 — the football workload (Example 2.1): a mixed query load through
/// the whole stack, plus the selection-pushdown ablation on the algebra.
pub fn e10_football() -> Table {
    let mut t = Table::new(
        "E10 — football league: end-to-end queries and pushdown ablation",
        &["teams", "games", "query", "time", "rows"],
    );
    for teams in [8usize, 12, 16] {
        let src = football_program(teams, 5);
        let schema_part = r#"
            classes
              team = (team_name: string, city: string);
            associations
              game = (h_team: team, g_team: team, day: integer,
                      home_goals: integer, guest_goals: integer);
        "#;
        let mut db = Database::from_source(schema_part).expect("schema loads");
        let rules_at = src.find("rules").expect("rules section");
        db.apply_source(&src[rules_at..], Mode::Ridv)
            .expect("league loads");
        let games = db.edb().assoc_len(Sym::new("game"));

        // Q1 (language): home wins of a specific team, joined back to the
        // class for the name.
        let (d, rows) = time(|| {
            db.query(
                r#"goal game(h_team: H, g_team: G, home_goals: HG, guest_goals: GG),
                        team(self: H, team_name: "t0"),
                        team(self: G, team_name: GN),
                        HG > GG?"#,
            )
            .expect("Q1 runs")
        });
        t.row(vec![
            teams.to_string(),
            games.to_string(),
            "Q1 home wins of t0 (language)".into(),
            fmt_duration(d),
            rows.len().to_string(),
        ]);

        // Q2 (algebra): per-team goal totals via grouped aggregation.
        let (inst, _) = db.instance().expect("instance");
        let env = env_from_instance(db.schema(), &inst);
        let agg = AlgExpr::Aggregate {
            input: Box::new(AlgExpr::Rel(Sym::new("game"))),
            group: vec![Sym::new("h_team")],
            agg: AggFun::Sum,
            on: Sym::new("home_goals"),
            into: Sym::new("total"),
        };
        let (d, rows) = time(|| algres::eval(&agg, &env).expect("Q2 runs").len());
        t.row(vec![
            teams.to_string(),
            games.to_string(),
            "Q2 goals per home team (algebra)".into(),
            fmt_duration(d),
            rows.to_string(),
        ]);

        // Q3 ablation: a selective predicate above a self-join, with and
        // without selection pushdown (catalog-aware, so the conjuncts sink
        // through the renames onto the base relation).
        let join = AlgExpr::Rel(Sym::new("game"))
            .rename("g_team", "mid")
            .rename("day", "day1")
            .rename("home_goals", "hg1")
            .rename("guest_goals", "gg1")
            .join(
                AlgExpr::Rel(Sym::new("game"))
                    .rename("h_team", "mid")
                    .rename("g_team", "far")
                    .rename("day", "day2")
                    .rename("home_goals", "hg2")
                    .rename("guest_goals", "gg2"),
            )
            .select(APred::And(
                Box::new(APred::Cmp(
                    CmpOp::Eq,
                    Scalar::col("day1"),
                    Scalar::Const(Value::Int(1)),
                )),
                Box::new(APred::Cmp(
                    CmpOp::Lt,
                    Scalar::col("day2"),
                    Scalar::Const(Value::Int(games as i64 / 2)),
                )),
            ));
        let (d_plain, n_plain) = time(|| algres::eval(&join, &env).expect("Q3 plain").len());
        let catalog = |name: Sym| env.get(name).map(|r| r.cols().to_vec());
        let optimized = algres::push_selections_with(join, &catalog);
        let (d_opt, n_opt) = time(|| algres::eval(&optimized, &env).expect("Q3 opt").len());
        assert_eq!(n_plain, n_opt);
        t.row(vec![
            teams.to_string(),
            games.to_string(),
            "Q3 2-hop self-join (no pushdown)".into(),
            fmt_duration(d_plain),
            n_plain.to_string(),
        ]);
        t.row(vec![
            teams.to_string(),
            games.to_string(),
            "Q3 2-hop self-join (pushdown)".into(),
            fmt_duration(d_opt),
            n_opt.to_string(),
        ]);
    }
    t
}

/// E11 — the evaluation governor (DESIGN.md §7): deadline and value-budget
/// cancellation over a diverging oid-inventing counter program, and the
/// overhead of running governed when no budget trips.
pub fn e11_governor() -> Table {
    let mut t = Table::new(
        "E11 — governor: cancellation on divergence, overhead when idle",
        &["workload", "budget", "outcome", "steps", "time"],
    );
    let diverging = r#"
        classes
          c = (n: integer);
        rules
          c(self: X, n: 0) <- .
          c(self: X, n: N) <- c(n: M), N = M + 1.
    "#;
    let (schema, edb, rules) = loaded(diverging);
    let mut run = |budget: String, opts: EvalOptions| {
        let (d, res) = time(|| evaluate_inflationary(&schema, &rules, &edb, opts));
        let (outcome, steps) = match res {
            Err(logres::engine::EngineError::Cancelled { cause, partial }) => {
                (cause.to_string(), partial.steps)
            }
            Ok((_, report)) => ("fixpoint".to_owned(), report.steps),
            Err(e) => (e.to_string(), 0),
        };
        t.row(vec![
            "counter (diverging)".into(),
            budget,
            outcome,
            steps.to_string(),
            fmt_duration(d),
        ]);
    };
    for ms in [5u64, 25, 100] {
        run(
            format!("{ms}ms"),
            EvalOptions {
                deadline: Some(Duration::from_millis(ms)),
                ..EvalOptions::default()
            },
        );
    }
    run(
        "2k nodes".to_owned(),
        EvalOptions {
            max_value_nodes: Some(2_000),
            ..EvalOptions::default()
        },
    );

    // Overhead: a terminating closure under a never-tripping deadline must
    // cost the same as an ungoverned run (and produce the same instance).
    let (schema2, edb2, rules2) = loaded(&closure_program(&chain_edges(128)));
    let (d_plain, (inst_plain, report)) = time(|| {
        evaluate_seminaive(&schema2, &rules2, &edb2, EvalOptions::default()).expect("closure runs")
    });
    t.row(vec![
        "chain 128 (terminating)".into(),
        "none".into(),
        "fixpoint".into(),
        report.steps.to_string(),
        fmt_duration(d_plain),
    ]);
    let governed = EvalOptions {
        deadline: Some(Duration::from_secs(3_600)),
        max_value_nodes: Some(usize::MAX),
        ..EvalOptions::default()
    };
    let (d_gov, (inst_gov, report)) =
        time(|| evaluate_seminaive(&schema2, &rules2, &edb2, governed).expect("closure runs"));
    assert_eq!(inst_plain, inst_gov, "governed run must not change results");
    t.row(vec![
        "chain 128 (terminating)".into(),
        "1h (never trips)".into(),
        "fixpoint".into(),
        report.steps.to_string(),
        fmt_duration(d_gov),
    ]);
    t
}

/// E12 — observability overhead: the E1 chain-128 closure with metrics
/// off, metrics on, and metrics + provenance, on both engines (DESIGN.md
/// §8). Claim: the pre-resolved atomic counter handles keep the
/// metrics-on, provenance-off overhead small (target < 5% on this
/// workload); provenance recording is the explicitly expensive tier.
/// Setting `LOGRES_E12_MAX_OVERHEAD=<pct>` turns the combined metrics-on
/// overhead into a hard failure (the CI smoke threshold).
pub fn e12_observability() -> Table {
    let mut t = Table::new(
        "E12 — instrumentation overhead on the chain-128 closure",
        &["engine", "variant", "time", "overhead %"],
    );
    let (schema, edb, rules) = loaded(&closure_program(&chain_edges(128)));

    let best_of = |opts: &EvalOptions, seminaive: bool| {
        let mut best: Option<(Duration, Instance)> = None;
        for _ in 0..5 {
            let (d, (inst, _)) = time(|| {
                if seminaive {
                    evaluate_seminaive(&schema, &rules, &edb, opts.clone()).expect("closure runs")
                } else {
                    evaluate_inflationary(&schema, &rules, &edb, opts.clone())
                        .expect("closure runs")
                }
            });
            if best.as_ref().is_none_or(|(b, _)| d < *b) {
                best = Some((d, inst));
            }
        }
        best.expect("five runs")
    };

    let mut base_total = 0f64;
    let mut metrics_total = 0f64;
    for (engine, seminaive) in [("inflationary", false), ("semi-naive", true)] {
        let (d_base, inst_base) = best_of(&bench_opts(), seminaive);
        base_total += d_base.as_secs_f64();
        t.row(vec![
            engine.into(),
            "baseline".into(),
            fmt_duration(d_base),
            "—".into(),
        ]);

        let with_metrics = EvalOptions {
            metrics: Some(Arc::new(MetricsRegistry::new())),
            ..bench_opts()
        };
        let (d_m, inst_m) = best_of(&with_metrics, seminaive);
        assert_eq!(inst_base, inst_m, "metrics must not change results");
        metrics_total += d_m.as_secs_f64();
        t.row(vec![
            engine.into(),
            "metrics".into(),
            fmt_duration(d_m),
            overhead_pct(d_base, d_m),
        ]);

        let with_prov = EvalOptions {
            metrics: Some(Arc::new(MetricsRegistry::new())),
            provenance: true,
            ..bench_opts()
        };
        let (d_p, inst_p) = best_of(&with_prov, seminaive);
        assert_eq!(inst_base, inst_p, "provenance must not change results");
        t.row(vec![
            engine.into(),
            "metrics + provenance".into(),
            fmt_duration(d_p),
            overhead_pct(d_base, d_p),
        ]);
    }

    if let Ok(max) = std::env::var("LOGRES_E12_MAX_OVERHEAD") {
        let max: f64 = max
            .parse()
            .expect("LOGRES_E12_MAX_OVERHEAD is a percentage");
        let pct = (metrics_total - base_total) / base_total * 100.0;
        assert!(
            pct <= max,
            "metrics-on overhead {pct:.1}% exceeds LOGRES_E12_MAX_OVERHEAD={max}%"
        );
    }
    t
}

/// E13 — goal-directed evaluation: the magic-set rewrite against the full
/// fixpoint on a selective closure query. Claim (DESIGN.md §10): for a goal
/// that binds the source of a transitive closure, demand-driven evaluation
/// touches only the reachable cone, so its advantage grows with the part of
/// the graph the goal never asks about.
pub fn e13_goal_directed() -> Table {
    let mut t = Table::new(
        "E13 — goal-directed (magic-set) vs full fixpoint, selective closure query",
        &[
            "workload",
            "n",
            "strategy",
            "time",
            "tc tuples",
            "answers",
            "speedup",
        ],
    );
    let opts = bench_opts();
    let mut chain_128_speedup = None;

    let mut run = |workload: &str, edges: Vec<(i64, i64)>| {
        let n = edges.len();
        let src = format!("{}\n        goal tc(a: 0, b: X)?", closure_program(&edges));
        let p = parse_program(&src).expect("workload parses");
        let mut edb = Instance::new();
        let mut gen = OidGen::new();
        load_facts(&p.schema, &mut edb, &p.facts, &mut gen).expect("workload loads");
        let goal = p.goal.as_ref().expect("workload has a goal");
        let tc = Sym::new("tc");

        type RowsAndTuples = (Vec<Vec<(Sym, Value)>>, usize);
        let best_of = |f: &dyn Fn() -> RowsAndTuples| {
            let mut best: Option<(Duration, RowsAndTuples)> = None;
            for _ in 0..3 {
                let (d, r) = time(f);
                if best.as_ref().is_none_or(|(b, _)| d < *b) {
                    best = Some((d, r));
                }
            }
            best.expect("three runs")
        };

        // Full fixpoint: materialize the whole model, then answer the goal.
        let (d_full, (full_rows, full_tc)) = best_of(&|| {
            let (inst, _) = evaluate(
                &p.schema,
                &p.rules,
                &edb,
                Semantics::Stratified,
                opts.clone(),
            )
            .expect("full evaluation runs");
            let rows = answer_goal(&p.schema, &inst, goal).expect("goal answers");
            let tuples = inst.assoc_len(tc);
            (rows, tuples)
        });
        t.row(vec![
            workload.into(),
            n.to_string(),
            "full fixpoint".into(),
            fmt_duration(d_full),
            full_tc.to_string(),
            full_rows.len().to_string(),
            "—".into(),
        ]);

        // Second reference point: the best full-materialization driver the
        // engine has (semi-naive), so the speedup is not just an artifact
        // of comparing against the naive interpreter.
        let (d_sn, (sn_rows, sn_tc)) = best_of(&|| {
            let (inst, _) = evaluate_seminaive(&p.schema, &p.rules, &edb, opts.clone())
                .expect("semi-naive evaluation runs");
            let rows = answer_goal(&p.schema, &inst, goal).expect("goal answers");
            let tuples = inst.assoc_len(tc);
            (rows, tuples)
        });
        assert_eq!(sn_rows, full_rows, "drivers must agree on answers");
        t.row(vec![
            workload.into(),
            n.to_string(),
            "full semi-naive".into(),
            fmt_duration(d_sn),
            sn_tc.to_string(),
            sn_rows.len().to_string(),
            format!(
                "{:.1}x",
                d_full.as_secs_f64() / d_sn.as_secs_f64().max(f64::EPSILON)
            ),
        ]);

        // Demand-driven: rewrite for the goal, evaluate only the demanded
        // cone, answer against the partial instance.
        let (d_magic, (magic_rows, magic_tc)) = best_of(&|| {
            let (inst, _) = evaluate_demand(
                &p.schema,
                &p.rules,
                &edb,
                goal,
                Semantics::Stratified,
                opts.clone(),
            )
            .expect("demand evaluation runs")
            .expect("selective goal rewrites");
            let rows = answer_goal(&p.schema, &inst, goal).expect("goal answers");
            let tuples = inst.assoc_len(tc);
            (rows, tuples)
        });
        assert_eq!(
            magic_rows, full_rows,
            "demand-driven answers must match the full fixpoint"
        );
        let speedup = d_full.as_secs_f64() / d_magic.as_secs_f64().max(f64::EPSILON);
        if workload == "chain" && n == 128 {
            chain_128_speedup = Some(speedup);
        }
        t.row(vec![
            workload.into(),
            n.to_string(),
            "magic-set".into(),
            fmt_duration(d_magic),
            magic_tc.to_string(),
            magic_rows.len().to_string(),
            format!("{speedup:.1}x"),
        ]);
    };

    for n in [64usize, 128] {
        run("chain", chain_edges(n));
    }
    for n in [64usize, 128] {
        run("tree", tree_edges(n));
    }

    if let Ok(min) = std::env::var("LOGRES_E13_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("LOGRES_E13_MIN_SPEEDUP is a factor");
        let got = chain_128_speedup.expect("chain-128 row ran");
        assert!(
            got >= min,
            "chain-128 magic-set speedup {got:.1}x is below LOGRES_E13_MIN_SPEEDUP={min}x"
        );
    }
    t
}

/// E14 — the compiled production path (PR 7 tentpole; paper §5's
/// translation-to-ALGRES). The *same* `evaluate` call production makes runs
/// once with `EvalOptions::compiled` on (stratified planner → select–join–
/// project plans with fused emit reshapes, semi-naive delta rounds over a
/// caching evaluator) and once with it off (the tuple-at-a-time
/// interpreter), plus the semi-naive interpreter for reference. Claims:
/// set-at-a-time plans win by ≥10× at n≥512 (`LOGRES_E14_MIN_SPEEDUP` turns
/// that into a CI floor), and since the emit fusion removed the per-round
/// reshape churn, the compiled path also holds its own against the
/// semi-naive interpreter on the n=64 micro chain
/// (`LOGRES_E14_MIN_VS_SEMINAIVE` gates that ratio — 1.0 means "no slower").
/// All paths must produce the identical instance.
pub fn e14_compiled_path() -> Table {
    let mut t = Table::new(
        "E14 — compiled ALGRES plans vs interpreted evaluation (chain closure)",
        &["workload", "n", "path", "time", "tc tuples", "speedup"],
    );
    let tc = Sym::new("tc");
    let mut chain_512_speedup = None;
    let mut micro_vs_seminaive = None;
    for n in [64usize, 256, 512] {
        let src = closure_program(&chain_edges(n));
        let (schema, edb, rules) = loaded(&src);
        // The n=64 micro rows finish in single-digit milliseconds; take the
        // best of several runs so the gated ratio measures the paths, not
        // the scheduler.
        let runs = if n == 64 { 5 } else { 1 };

        let interp_opts = EvalOptions {
            compiled: false,
            ..bench_opts()
        };
        let (d_interp, (interp_inst, _)) = time(|| {
            evaluate(&schema, &rules, &edb, Semantics::Inflationary, interp_opts)
                .expect("interpreted path evaluates")
        });
        t.row(vec![
            "chain".into(),
            n.to_string(),
            "interpreted".into(),
            fmt_duration(d_interp),
            interp_inst.assoc_len(tc).to_string(),
            "1.0x".into(),
        ]);

        let (d_semi, (semi_inst, _)) = best_of(runs, || {
            evaluate_seminaive(&schema, &rules, &edb, bench_opts()).expect("semi-naive evaluates")
        });
        t.row(vec![
            "chain".into(),
            n.to_string(),
            "semi-naive interpreter".into(),
            fmt_duration(d_semi),
            semi_inst.assoc_len(tc).to_string(),
            format!(
                "{:.1}x",
                d_interp.as_secs_f64() / d_semi.as_secs_f64().max(f64::EPSILON)
            ),
        ]);

        let (d_comp, (comp_inst, _)) = best_of(runs, || {
            evaluate(&schema, &rules, &edb, Semantics::Inflationary, bench_opts())
                .expect("compiled path evaluates")
        });
        assert_eq!(
            comp_inst.fact_count(),
            interp_inst.fact_count(),
            "compiled and interpreted instances must be identical"
        );
        for tuple in interp_inst.tuples_of(tc) {
            assert!(
                comp_inst.has_tuple(tc, tuple),
                "compiled instance is missing {tuple}"
            );
        }
        let speedup = d_interp.as_secs_f64() / d_comp.as_secs_f64().max(f64::EPSILON);
        if n == 512 {
            chain_512_speedup = Some(speedup);
        }
        if n == 64 {
            micro_vs_seminaive =
                Some(d_semi.as_secs_f64() / d_comp.as_secs_f64().max(f64::EPSILON));
        }
        t.row(vec![
            "chain".into(),
            n.to_string(),
            "compiled (ALGRES plans)".into(),
            fmt_duration(d_comp),
            comp_inst.assoc_len(tc).to_string(),
            format!("{speedup:.1}x"),
        ]);
    }

    if let Ok(min) = std::env::var("LOGRES_E14_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("LOGRES_E14_MIN_SPEEDUP is a factor");
        let got = chain_512_speedup.expect("chain-512 row ran");
        assert!(
            got >= min,
            "chain-512 compiled speedup {got:.1}x is below LOGRES_E14_MIN_SPEEDUP={min}x"
        );
    }
    if let Ok(min) = std::env::var("LOGRES_E14_MIN_VS_SEMINAIVE") {
        let min: f64 = min
            .parse()
            .expect("LOGRES_E14_MIN_VS_SEMINAIVE is a factor");
        let got = micro_vs_seminaive.expect("chain-64 row ran");
        assert!(
            got >= min,
            "chain-64 compiled path runs at {got:.2}x the semi-naive interpreter, \
             below LOGRES_E14_MIN_VS_SEMINAIVE={min}x — the emit fusion \
             (fuse_reshapes) no longer covers the per-round reshape cost"
        );
    }
    t
}

/// E15 — EXPLAIN ANALYZE: price the per-operator profiler, then use it
/// (DESIGN.md §13). Part one times the compiled chain-256 closure in three
/// configurations — baseline, metrics-on / profile-off (the production
/// default; `LOGRES_E15_MAX_OVERHEAD=<pct>` turns its overhead into a hard
/// CI ceiling), and profile-on (priced but not gated: profiling is an
/// opt-in diagnostic). Part two points the profiler at the micro chain
/// closure — the workload whose profile attributed ~79% of round time to
/// the per-rule reshape chain and motivated the emit fusion — and ranks
/// operators by self time; with the fused plans the compiled path holds
/// its own here (E14's `LOGRES_E14_MIN_VS_SEMINAIVE` gate keeps it so).
pub fn e15_plan_profiling() -> Table {
    let mut t = Table::new(
        "E15 — EXPLAIN ANALYZE: profiler price, then micro-closure attribution",
        &[
            "section",
            "variant / op",
            "time",
            "overhead / share",
            "detail",
        ],
    );

    // -- Part one: what the instrumentation costs on the compiled path. --
    let (schema, edb, rules) = loaded(&closure_program(&chain_edges(256)));
    let configs = [
        bench_opts(),
        EvalOptions {
            metrics: Some(Arc::new(MetricsRegistry::new())),
            ..bench_opts()
        },
        EvalOptions {
            metrics: Some(Arc::new(MetricsRegistry::new())),
            profile: true,
            ..bench_opts()
        },
    ];
    // Correctness first, untimed: all three configurations produce the
    // same instance.
    let insts: Vec<Instance> = configs
        .iter()
        .map(|opts| {
            evaluate(&schema, &rules, &edb, Semantics::Inflationary, opts.clone())
                .expect("compiled closure runs")
                .0
        })
        .collect();
    assert_eq!(insts[0], insts[1], "metrics must not change results");
    assert_eq!(insts[0], insts[2], "profiling must not change results");
    drop(insts);
    // Then timing: configurations interleaved within each repetition (so a
    // transient machine stall lands on every variant, not one column) and
    // every result dropped before the next measurement (so no variant runs
    // against a heap the earlier ones bloated).
    let mut best = [Duration::MAX; 3];
    for _ in 0..7 {
        for (slot, opts) in best.iter_mut().zip(&configs) {
            let (d, _) = time(|| {
                evaluate(&schema, &rules, &edb, Semantics::Inflationary, opts.clone())
                    .expect("compiled closure runs")
            });
            *slot = (*slot).min(d);
        }
    }
    let [d_base, d_m, d_p] = best;
    t.row(vec![
        "price".into(),
        "baseline".into(),
        fmt_duration(d_base),
        "—".into(),
        "chain 256, compiled".into(),
    ]);
    t.row(vec![
        "price".into(),
        "metrics, profile off".into(),
        fmt_duration(d_m),
        overhead_pct(d_base, d_m),
        "production configuration".into(),
    ]);
    t.row(vec![
        "price".into(),
        "metrics + profile".into(),
        fmt_duration(d_p),
        overhead_pct(d_base, d_p),
        "EXPLAIN ANALYZE (opt-in)".into(),
    ]);

    if let Ok(max) = std::env::var("LOGRES_E15_MAX_OVERHEAD") {
        let max: f64 = max
            .parse()
            .expect("LOGRES_E15_MAX_OVERHEAD is a percentage");
        let base_s = d_base.as_secs_f64();
        let pct = (d_m.as_secs_f64() - base_s) / base_s * 100.0;
        assert!(
            pct <= max,
            "profile-off overhead {pct:.1}% exceeds LOGRES_E15_MAX_OVERHEAD={max}%"
        );
    }

    // -- Part two: attribute micro-closure round time to named operators. --
    // This profile is what indicted the per-rule reshape chain (extend /
    // project / rename) and motivated fusing it into the emit operator;
    // it now shows where the fused rounds actually spend their time.
    let n_micro = 48usize;
    let (schema, edb, rules) = loaded(&closure_program(&chain_edges(n_micro)));
    let (d_semi, _) = time(|| {
        evaluate_seminaive(&schema, &rules, &edb, bench_opts()).expect("semi-naive evaluates")
    });
    t.row(vec![
        "micro gap".into(),
        "semi-naive interpreter".into(),
        fmt_duration(d_semi),
        "1.0x".into(),
        format!("chain {n_micro}"),
    ]);
    let profiled = EvalOptions {
        profile: true,
        ..bench_opts()
    };
    let (d_comp, (_, report)) = time(|| {
        evaluate(&schema, &rules, &edb, Semantics::Inflationary, profiled)
            .expect("compiled closure runs")
    });
    t.row(vec![
        "micro gap".into(),
        "compiled, profile on".into(),
        fmt_duration(d_comp),
        format!(
            "{:.1}x vs semi-naive",
            d_comp.as_secs_f64() / d_semi.as_secs_f64().max(f64::EPSILON)
        ),
        format!("chain {n_micro}"),
    ]);

    let profile = report.plan_profile.expect("compiled run yields a profile");
    let attributed = profile.attributed_nanos().max(1);
    for (op, self_nanos, detail) in op_self_times(&profile) {
        t.row(vec![
            "attribution".into(),
            op,
            fmt_duration(Duration::from_nanos(self_nanos)),
            format!(
                "{:.1}% of attributed",
                self_nanos as f64 / attributed as f64 * 100.0
            ),
            detail,
        ]);
    }
    t.row(vec![
        "attribution".into(),
        "total attributed".into(),
        fmt_duration(Duration::from_nanos(attributed)),
        format!(
            "{:.1}% of wall",
            attributed as f64 / (d_comp.as_nanos() as f64).max(1.0) * 100.0
        ),
        "Σ operator self time".into(),
    ]);
    t
}

/// E16 — the flow analyzer: price the whole-program abstract
/// interpretation, then cash it in on the compiled path (DESIGN.md §14).
/// Part one times `flow_program` over every shipped example module
/// (`LOGRES_E16_MAX_ANALYZER_MS=<ms>` turns the worst case into a hard CI
/// ceiling; the budget is <50 ms so running the pass per evaluation stays
/// in the noise). Part two compiles a dense two-hop workload with and
/// without the analyzer's summaries: flow prunes a statically-empty rule
/// and leads the join with the at-most-one `pick` relation, turning an
/// O(m³) intermediate into O(m²) — results are asserted bit-identical to
/// the no-flow plan and the interpreter first, then both plans are timed
/// interleaved (`LOGRES_E16_MIN_SPEEDUP=<factor>` gates the win).
pub fn e16_flow_analysis() -> Table {
    let mut t = Table::new(
        "E16 — flow analysis: analyzer price, then compiled-path payoff",
        &[
            "section",
            "workload / variant",
            "time",
            "speedup / budget",
            "detail",
        ],
    );

    // -- Part one: what the whole-program analyzer costs. --
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/modules");
    let mut modules: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .expect("examples/modules exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "lgr"))
        .collect();
    modules.sort();
    let mut worst = Duration::ZERO;
    for path in &modules {
        let text = std::fs::read_to_string(path).expect("example module reads");
        let program = parse_program(&text).expect("example module parses");
        // Correctness first, untimed: the fixpoint is deterministic.
        let diags = flow_program(&program);
        assert_eq!(
            render_all_json(&diags),
            render_all_json(&flow_program(&program)),
            "{} analyzes nondeterministically",
            path.display()
        );
        let mut best = Duration::MAX;
        for _ in 0..7 {
            let (d, _) = time(|| flow_program(&program));
            best = best.min(d);
        }
        worst = worst.max(best);
        t.row(vec![
            "analyzer".into(),
            path.file_name().unwrap().to_string_lossy().into_owned(),
            fmt_duration(best),
            "—".into(),
            format!(
                "{} rules, {} flow diagnostics",
                program.rules.rules.len(),
                diags.len()
            ),
        ]);
    }

    // -- Part two: the payoff on the compiled path. --
    // A dense DAG two-hop join: `pick` holds one endpoint, `dead` can
    // never fire. Source order joins e ⋈ e2 first (O(m³) two-hop paths);
    // the flow order leads with the at-most-one `pick`.
    let m = 64i64;
    let mut src = String::from(
        "associations\n  e    = (a: integer, b: integer);\n  e2   = (a: integer, b: integer);\n  pick = (p: integer);\n  hop2 = (a: integer, b: integer);\n  dead = (a: integer, b: integer);\nfacts\n",
    );
    for i in 0..m {
        for j in (i + 1)..m {
            src.push_str(&format!("  e(a: {i}, b: {j}).\n  e2(a: {i}, b: {j}).\n"));
        }
    }
    src.push_str(&format!("  pick(p: {}).\n", m - 1));
    src.push_str(
        "rules\n  hop2(a: X, b: Z) <- e(a: X, b: Y), e2(a: Y, b: Z), pick(p: Z).\n  dead(a: X, b: Z) <- e(a: X, b: Y), e2(a: Y, b: Z), X > 100000.\ngoal hop2(a: A, b: B)?\n",
    );
    let (schema, edb, rules) = loaded(&src);
    let mut best_an = Duration::MAX;
    for _ in 0..7 {
        let (d, _) = time(|| {
            let seeds = seeds_from_instance(&schema, &edb);
            infer(&schema, &rules, &seeds)
        });
        best_an = best_an.min(d);
    }
    worst = worst.max(best_an);
    t.row(vec![
        "analyzer".into(),
        format!("dense two-hop, m={m}"),
        fmt_duration(best_an),
        "—".into(),
        format!("{} facts", edb.fact_count()),
    ]);
    if let Ok(max_ms) = std::env::var("LOGRES_E16_MAX_ANALYZER_MS") {
        let max_ms: u64 = max_ms
            .parse()
            .expect("LOGRES_E16_MAX_ANALYZER_MS is a millisecond count");
        assert!(
            worst <= Duration::from_millis(max_ms),
            "worst analyzer time {worst:?} exceeds LOGRES_E16_MAX_ANALYZER_MS={max_ms}"
        );
    }

    let seeds = seeds_from_instance(&schema, &edb);
    let summaries = infer(&schema, &rules, &seeds);
    let noflow =
        compile_program(&schema, &rules, Semantics::Inflationary).expect("workload compiles");
    let flowed = compile_program_with(&schema, &rules, Semantics::Inflationary, Some(&summaries))
        .expect("workload compiles with flow");
    let pruned: usize = flowed.strata.iter().map(|s| s.pruned.len()).sum();
    let reordered = flowed
        .strata
        .iter()
        .flat_map(|s| s.steps.iter())
        .flat_map(|st| st.notes.iter())
        .filter(|n| n.contains("ordered-by-flow"))
        .count();
    assert_eq!(
        pruned, 1,
        "flow must prune the statically-empty `dead` rule"
    );
    assert!(reordered >= 1, "flow must reorder the `hop2` join");

    // Correctness first, untimed: both plans and the interpreter agree.
    let opts = bench_opts();
    let (i_noflow, _) =
        run_compiled(&schema, &noflow, &rules, &edb, &opts).expect("no-flow plan runs");
    let (i_flow, _) = run_compiled(&schema, &flowed, &rules, &edb, &opts).expect("flow plan runs");
    let interp_opts = EvalOptions {
        compiled: false,
        ..bench_opts()
    };
    let (i_interp, _) = evaluate(&schema, &rules, &edb, Semantics::Inflationary, interp_opts)
        .expect("interpreter runs");
    assert_eq!(i_noflow, i_flow, "flow hints must not change results");
    assert_eq!(
        i_flow, i_interp,
        "compiled paths must match the interpreter"
    );
    let hop2 = i_flow.assoc_len(Sym::new("hop2"));
    assert_eq!(
        i_flow.assoc_len(Sym::new("dead")),
        0,
        "the pruned rule is genuinely empty"
    );
    drop((i_noflow, i_flow, i_interp));

    let mut best = [Duration::MAX; 2];
    for _ in 0..7 {
        for (slot, program) in best.iter_mut().zip([&noflow, &flowed]) {
            let (d, _) = time(|| {
                run_compiled(&schema, program, &rules, &edb, &opts).expect("compiled plan runs")
            });
            *slot = (*slot).min(d);
        }
    }
    let [d_noflow, d_flow] = best;
    let speedup = d_noflow.as_secs_f64() / d_flow.as_secs_f64().max(f64::EPSILON);
    t.row(vec![
        "compiled".into(),
        "no flow".into(),
        fmt_duration(d_noflow),
        "1.0x".into(),
        format!("dense m={m}, {hop2} hop2 tuples"),
    ]);
    t.row(vec![
        "compiled".into(),
        "with flow".into(),
        fmt_duration(d_flow),
        format!("{speedup:.1}x"),
        format!("{pruned} rule pruned, {reordered} plans reordered"),
    ]);
    if let Ok(min) = std::env::var("LOGRES_E16_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("LOGRES_E16_MIN_SPEEDUP is a factor");
        assert!(
            speedup >= min,
            "flow speedup {speedup:.2}x below LOGRES_E16_MIN_SPEEDUP={min}"
        );
    }
    t
}

/// Aggregate a [`logres::PlanProfile`] by operator name: total self time
/// descending, with the highest-eval-count detail string as a sample.
fn op_self_times(profile: &logres::PlanProfile) -> Vec<(String, u64, String)> {
    let mut by_op: std::collections::BTreeMap<&str, (u64, u64, &str)> =
        std::collections::BTreeMap::new();
    for rp in &profile.rules {
        for op in &rp.ops {
            let slot = by_op.entry(&op.op).or_insert((0, 0, ""));
            slot.0 += op.self_nanos;
            if op.evals >= slot.1 {
                slot.1 = op.evals;
                slot.2 = &op.detail;
            }
        }
    }
    let mut out: Vec<(String, u64, String)> = by_op
        .into_iter()
        .map(|(op, (self_nanos, _, detail))| (op.to_string(), self_nanos, detail.to_string()))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

fn overhead_pct(base: Duration, variant: Duration) -> String {
    let base_s = base.as_secs_f64();
    if base_s <= 0.0 {
        return "—".into();
    }
    format!("{:+.1}", (variant.as_secs_f64() - base_s) / base_s * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-run the cheap experiments end to end (the expensive sweeps are
    /// exercised by the `tables` binary and the Criterion benches).
    #[test]
    fn e2_powerset_shape_is_exponential() {
        let t = e2_powerset();
        // subsets column doubles each row: 16, 32, 64, 128, 256.
        let subsets: Vec<usize> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert_eq!(subsets, vec![16, 32, 64, 128, 256]);
    }

    #[test]
    fn e4_covers_all_six_modes() {
        let t = e4_modes();
        assert_eq!(t.rows.len(), 6);
        // RIDI/RADI report answers; data-variant and deleting rows don't.
        assert_ne!(t.rows[0][4], "—"); // RIDI
        assert_eq!(t.rows[2][4], "—"); // RDDI (no goal: the view is removed)
        assert_eq!(t.rows[3][4], "—"); // RIDV
    }

    #[test]
    fn e5_cycles_return_to_the_base_state() {
        let t = e5_updates();
        // Two strategies per n, and every insert/delete cycle nets out:
        // "E tuples after" is exactly n for every row.
        assert_eq!(t.rows.len(), 6);
        for (row, n) in t.rows.iter().zip([128, 128, 512, 512, 2_048, 2_048]) {
            assert_eq!(row[4], n.to_string(), "{row:?}");
        }
    }

    #[test]
    fn e6_counts_exactly_the_dangling_rows() {
        let t = e6_integrity();
        // 5% of 2000 = 100 dangling; 5% of 8000 = 400.
        assert_eq!(t.rows[1][4], "100");
        assert_eq!(t.rows[3][4], "400");
        assert_eq!(t.rows[0][4], "0");
    }

    #[test]
    fn e11_governor_cancels_divergence_and_idles_cheaply() {
        let t = e11_governor();
        // Three deadline rows + one value-budget row over the diverging
        // counter, then ungoverned/governed rows for the terminating chain.
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows[..3] {
            assert!(row[2].contains("deadline"), "{row:?}");
        }
        assert!(
            t.rows[3][2].contains("value-node budget"),
            "{:?}",
            t.rows[3]
        );
        assert_eq!(t.rows[4][2], "fixpoint");
        assert_eq!(t.rows[5][2], "fixpoint");
        // Cancelled runs still report progress.
        assert!(t.rows[2][3].parse::<usize>().unwrap() > 0);
    }

    #[test]
    fn e12_is_registered_and_overhead_column_formats() {
        assert!(all().iter().any(|(id, _)| *id == "e12"));
        assert_eq!(
            overhead_pct(Duration::from_millis(100), Duration::from_millis(104)),
            "+4.0"
        );
        assert_eq!(overhead_pct(Duration::ZERO, Duration::from_millis(1)), "—");
    }

    #[test]
    fn e15_is_registered_and_attribution_ranks_by_self_time() {
        assert!(all().iter().any(|(id, _)| *id == "e15"));
        let mut profile = logres::PlanProfile::default();
        let op = |name: &str, self_nanos: u64, evals: u64, detail: &str| logres::OpProfile {
            op: name.into(),
            detail: detail.into(),
            self_nanos,
            evals,
            ..logres::OpProfile::default()
        };
        profile.rules.push(logres::RulePlanProfile {
            rule_index: 0,
            rule: "tc(a: X, b: Y) <- e(a: X, b: Y).".into(),
            plan: "full".into(),
            ops: vec![op("join", 10, 1, "first"), op("materialize", 100, 1, "tc")],
        });
        profile.rules.push(logres::RulePlanProfile {
            rule_index: 1,
            rule: "…".into(),
            plan: "delta[0]".into(),
            ops: vec![op("join", 30, 20, "delta"), op("scan", 5, 20, "@delta_tc")],
        });
        let ranked = op_self_times(&profile);
        let names: Vec<&str> = ranked.iter().map(|(op, _, _)| op.as_str()).collect();
        assert_eq!(names, ["materialize", "join", "scan"]);
        // join: 10 + 30 self-nanos, sampled detail from the 20-eval node.
        assert_eq!(ranked[1].1, 40);
        assert_eq!(ranked[1].2, "delta");
    }

    #[test]
    fn e16_analyzes_every_module_and_flow_pays_for_itself() {
        assert!(all().iter().any(|(id, _)| *id == "e16"));
        let t = e16_flow_analysis();
        // One analyzer row per shipped example module plus the dense
        // workload, then the two compiled variants (the runner itself
        // asserts result equality, the prune, and the reorder).
        assert!(
            t.rows.iter().filter(|r| r[0] == "analyzer").count() >= 7,
            "{:?}",
            t.rows
        );
        let compiled: Vec<_> = t.rows.iter().filter(|r| r[0] == "compiled").collect();
        assert_eq!(compiled.len(), 2);
        assert!(compiled[1][4].contains("1 rule pruned"), "{compiled:?}");
    }

    #[test]
    fn e8_stratified_halves_each_layer() {
        let t = e8_semantics();
        // k=2, n=256: perfect model leaves 64 tuples in l2 (two halvings).
        let stratified_row = &t.rows[1];
        assert_eq!(stratified_row[2], "stratified");
        assert_eq!(stratified_row[4], "64");
    }
}
