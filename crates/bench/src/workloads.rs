//! Synthetic workload generators for the experiment suite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A chain `0 → 1 → … → n`.
pub fn chain_edges(n: usize) -> Vec<(i64, i64)> {
    (0..n as i64).map(|i| (i, i + 1)).collect()
}

/// A complete binary tree with `n` edges.
pub fn tree_edges(n: usize) -> Vec<(i64, i64)> {
    let mut out = Vec::with_capacity(n);
    let mut i = 0i64;
    while out.len() < n {
        out.push((i, 2 * i + 1));
        if out.len() < n {
            out.push((i, 2 * i + 2));
        }
        i += 1;
    }
    out
}

/// A seeded random digraph with `edges` distinct edges over `nodes`
/// vertices.
pub fn random_edges(nodes: usize, edges: usize, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::BTreeSet::new();
    while seen.len() < edges {
        let a = rng.gen_range(0..nodes as i64);
        let b = rng.gen_range(0..nodes as i64);
        if a != b {
            seen.insert((a, b));
        }
    }
    seen.into_iter().collect()
}

/// Transitive-closure program source over an edge list (associations `e`,
/// `tc`).
pub fn closure_program(edges: &[(i64, i64)]) -> String {
    let facts: String = edges
        .iter()
        .map(|(a, b)| format!("  e(a: {a}, b: {b}).\n"))
        .collect();
    format!(
        r#"
        associations
          e  = (a: integer, b: integer);
          tc = (a: integer, b: integer);
        facts
        {facts}
        rules
          tc(a: X, b: Y) <- e(a: X, b: Y).
          tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).
    "#
    )
}

/// The powerset program of Example 3.3 over `{1..n}`.
pub fn powerset_program(n: usize) -> String {
    let facts: String = (1..=n).map(|i| format!("  r(d: {i}).\n")).collect();
    format!(
        r#"
        associations
          r     = (d: integer);
          power = (s: {{integer}});
        facts
        {facts}
        rules
          power(s: X) <- X = {{}}.
          power(s: X) <- r(d: Y), append(X, {{}}, Y).
          power(s: X) <- power(s: Y), power(s: Z), union(X, Y, Z).
    "#
    )
}

/// Employee/department data for the interesting-pair workload (Example
/// 3.4): `n` employees over `n/10` departments; `dup_pct` percent of
/// employees share their department manager's name (making the pair
/// "interesting").
pub fn ip_program(n: usize, dup_pct: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let depts = (n / 10).max(1);
    let mut src = String::from(
        r#"
        classes
          ip = (employee: string, manager: string);
        associations
          emp  = (ename: string, works: string);
          dept = (dname: string, depmgr: string);
          pair = (employee: string, manager: string);
        facts
    "#,
    );
    for d in 0..depts {
        src.push_str(&format!("  dept(dname: \"d{d}\", depmgr: \"mgr{d}\").\n",));
        src.push_str(&format!("  emp(ename: \"mgr{d}\", works: \"d{d}\").\n",));
    }
    for i in 0..n {
        let d = rng.gen_range(0..depts);
        let name = if rng.gen_range(0..100) < dup_pct {
            format!("mgr{d}") // same name as the department manager
        } else {
            format!("e{i}")
        };
        src.push_str(&format!("  emp(ename: \"{name}\", works: \"d{d}\").\n"));
    }
    src.push_str(
        r#"
        rules
          pair(employee: E, manager: M)
            <- emp(ename: E, works: D), dept(dname: D, depmgr: M), emp(ename: M).
          ip(self: X, C) <- pair(C).
    "#,
    );
    src
}

/// Base database of `n` parent tuples (a forest of chains of length 10),
/// for the module-mode and update experiments.
pub fn parent_database(n: usize) -> String {
    let mut facts = String::new();
    for i in 0..n {
        let root = (i / 10) * 1000;
        let step = i % 10;
        facts.push_str(&format!(
            "  parent(par: \"p{}\", chil: \"p{}\").\n",
            root + step,
            root + step + 1
        ));
    }
    format!(
        r#"
        associations
          parent = (par: string, chil: string);
        facts
        {facts}
    "#
    )
}

/// The ancestor view module used by E4.
pub const ANCESTOR_MODULE: &str = r#"
    associations
      ancestor = (anc: string, des: string);
    rules
      ancestor(anc: X, des: Y) <- parent(par: X, chil: Y).
      ancestor(anc: X, des: Z) <- parent(par: X, chil: Y),
                                  ancestor(anc: Y, des: Z).
"#;

/// Set up one E4 module application: a fresh base database (with the
/// ancestor module pre-installed for RDDI, which otherwise has nothing to
/// delete) and the module to apply — goal-bearing only for the two
/// goal-answering modes. Shared by the E4 experiment and its Criterion
/// bench so the two cannot diverge.
pub fn e4_setup(base: &str, mode: logres::Mode) -> (logres::Database, logres::Module) {
    use logres::Mode;
    let mut db = logres::Database::from_source(base).expect("base loads");
    if matches!(mode, Mode::Rddi) {
        db.apply_source(ANCESTOR_MODULE, Mode::Radi)
            .expect("pre-install for RDDI");
    }
    let src = if matches!(mode, Mode::Ridi | Mode::Radi) {
        format!("{ANCESTOR_MODULE}\ngoal ancestor(anc: \"p0\", des: D)?")
    } else {
        ANCESTOR_MODULE.to_owned()
    };
    let module = logres::Module::parse(&src, db.schema()).expect("module parses");
    (db, module)
}

/// The E6 fixture schema (teams + fixtures with a distinguishing day
/// column) and one generated fixture tuple. Shared by the E6 experiment and
/// its Criterion bench. `dangling_pct` percent of tuples reference a
/// non-existent guest team.
pub fn e6_schema() -> logres::Schema {
    let mut s = logres::Schema::new();
    s.add_class(
        "team",
        logres::TypeDesc::tuple([("name", logres::TypeDesc::Str)]),
    )
    .unwrap();
    s.add_assoc(
        "fixture",
        logres::TypeDesc::tuple([
            ("h", logres::TypeDesc::class("team")),
            ("g", logres::TypeDesc::class("team")),
            // Keeps every generated fixture distinct under set semantics.
            ("day", logres::TypeDesc::Int),
        ]),
    )
    .unwrap();
    s.validate().unwrap();
    s
}

/// One E6 fixture tuple (see [`e6_schema`]).
pub fn e6_fixture(i: usize, teams: u64, dangling_pct: usize) -> logres::Value {
    use logres::Value;
    let h = (i as u64 * 7) % teams;
    let g = if i % 100 < dangling_pct {
        teams + 1_000 + i as u64 // dangling reference
    } else {
        (i as u64 * 13) % teams
    };
    Value::tuple([
        ("h", Value::Oid(logres::Oid(h))),
        ("g", Value::Oid(logres::Oid(g))),
        ("day", Value::Int(i as i64)),
    ])
}

/// A key/value table of `n` rows for the in-place-update experiment (E5).
pub fn kv_database(n: usize) -> String {
    let facts: String = (0..n as i64)
        .map(|i| format!("  p(d1: {i}, d2: {i}).\n"))
        .collect();
    format!(
        r#"
        associations
          p = (d1: integer, d2: integer);
        facts
        {facts}
    "#
    )
}

/// The Example 4.2 update module: add 1 to `d2` of every even-keyed tuple.
pub const UPDATE_MODULE: &str = r#"
    associations
      mod_t = (d1: integer, d2: integer);
    rules
      p(d1: X, d2: Z) <- p(d1: X, d2: Y), even(X), Z = Y + 1,
                         not mod_t(d1: X, d2: Y).
      mod_t(d1: X, d2: Z) <- p(d1: X, d2: Y), even(X), Z = Y + 1,
                             not mod_t(d1: X, d2: Y).
      -p(Y) <- p(Y, d1: X), even(X), not mod_t(Y).
"#;

/// A schema with an isa chain of depth `d` (`c0` at the top) and `n`
/// objects inserted into the deepest class.
pub fn isa_chain_program(depth: usize, n: usize) -> String {
    let mut src = String::from("classes\n");
    src.push_str("  c0 = (a0: integer);\n");
    for i in 1..=depth {
        src.push_str(&format!(
            "  c{i} = (sup: c{}, a{i}: integer);\n  c{i} isa c{};\n",
            i - 1,
            i - 1
        ));
    }
    src.push_str("associations\n  seed = (v: integer);\nfacts\n");
    for v in 0..n {
        src.push_str(&format!("  seed(v: {v}).\n"));
    }
    src.push_str("rules\n");
    let attrs: String = (0..=depth)
        .map(|i| format!("a{i}: V"))
        .collect::<Vec<_>>()
        .join(", ");
    src.push_str(&format!("  c{depth}(self: X, {attrs}) <- seed(v: V).\n"));
    src
}

/// A stratified program with `k` negation strata over `n` base facts:
/// layer `i` marks and drops the lower half of what layer `i−1` kept, so
/// `|l_k| = n / 2^k`.
pub fn strata_program(k: usize, n: usize) -> String {
    let mut src = String::from("associations\n  l0 = (v: integer);\n");
    for i in 1..=k {
        src.push_str(&format!("  l{i} = (v: integer);\n"));
        src.push_str(&format!("  m{i} = (v: integer);\n"));
    }
    src.push_str("facts\n");
    for v in 0..n as i64 {
        src.push_str(&format!("  l0(v: {v}).\n"));
    }
    src.push_str("rules\n");
    let mut threshold = 0usize;
    for i in 1..=k {
        let prev = i - 1;
        threshold += n >> i; // lower half of the surviving range
        src.push_str(&format!(
            "  m{i}(v: X) <- l{prev}(v: X), X < {threshold}.\n"
        ));
        src.push_str(&format!("  l{i}(v: X) <- l{prev}(v: X), not m{i}(v: X).\n"));
    }
    src
}

/// The Example 3.2 genealogy program over a parent chain of length `n`
/// (data functions + nesting).
pub fn genealogy_program(n: usize) -> String {
    let facts: String = (0..n as i64)
        .map(|i| format!("  parent(par: \"p{i}\", chil: \"p{}\").\n", i + 1))
        .collect();
    format!(
        r#"
        associations
          parent   = (par: string, chil: string);
          ancestor = (anc: string, des: {{string}});
        functions
          desc: string -> {{string}};
        facts
        {facts}
        rules
          member(X, desc(Y)) <- parent(par: Y, chil: X).
          member(X, desc(Y)) <- parent(par: Y, chil: Z), member(X, T), T = desc(Z).
          ancestor(anc: X, des: Y) <- parent(par: X), Y = desc(X).
    "#
    )
}

/// A football league (Example 2.1 flavour): `teams` teams, each a class
/// object; a double round-robin of games as association tuples with
/// deterministic pseudo-random scores.
pub fn football_program(teams: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = String::from(
        r#"
        classes
          team = (team_name: string, city: string);
        associations
          game = (h_team: team, g_team: team, day: integer,
                  home_goals: integer, guest_goals: integer);
        rules
    "#,
    );
    for t in 0..teams {
        src.push_str(&format!(
            "  team(self: X, team_name: \"t{t}\", city: \"city{}\") <- .\n",
            t % 7
        ));
    }
    let mut day = 0;
    for h in 0..teams {
        for g in 0..teams {
            if h == g {
                continue;
            }
            day += 1;
            let hg = rng.gen_range(0..5);
            let gg = rng.gen_range(0..5);
            src.push_str(&format!(
                "  game(h_team: H, g_team: G, day: {day}, home_goals: {hg}, guest_goals: {gg}) \
                 <- team(H, team_name: \"t{h}\"), team(G, team_name: \"t{g}\").\n"
            ));
        }
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_requested_sizes() {
        assert_eq!(chain_edges(5).len(), 5);
        assert_eq!(tree_edges(9).len(), 9);
        assert_eq!(random_edges(10, 15, 1).len(), 15);
    }

    #[test]
    fn programs_parse() {
        for src in [
            closure_program(&chain_edges(3)),
            powerset_program(3),
            ip_program(20, 25, 1),
            parent_database(20),
            kv_database(10),
            isa_chain_program(3, 4),
            strata_program(3, 8),
            genealogy_program(4),
        ] {
            logres::lang::parse_program(&src).expect("workload parses");
        }
    }

    #[test]
    fn football_module_applies() {
        let mut db = logres::Database::from_source(
            r#"
            classes
              team = (team_name: string, city: string);
            associations
              game = (h_team: team, g_team: team, day: integer,
                      home_goals: integer, guest_goals: integer);
        "#,
        )
        .unwrap();
        // Strip the schema part of the generated program and apply the rules
        // as a module.
        let src = football_program(3, 7);
        let rules_at = src.find("rules").unwrap();
        db.apply_source(&src[rules_at..], logres::Mode::Ridv)
            .expect("league loads");
        assert_eq!(db.edb().class_len(logres::Sym::new("team")), 3);
        assert_eq!(db.edb().assoc_len(logres::Sym::new("game")), 6);
    }

    #[test]
    fn strata_program_layers_shrink() {
        let src = strata_program(2, 8);
        let mut db = logres::Database::from_source(&src).unwrap();
        db.set_semantics(logres::Semantics::Stratified);
        let (inst, _) = db.instance().unwrap();
        let l0 = inst.assoc_len(logres::Sym::new("l0"));
        let l1 = inst.assoc_len(logres::Sym::new("l1"));
        let l2 = inst.assoc_len(logres::Sym::new("l2"));
        assert_eq!(l0, 8);
        assert_eq!(l1, 4); // odd half survives
        assert!(l2 <= l1);
    }
}
