//! Vendored stand-in for the `proptest` crate (offline build).
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! [`Just`], `any::<T>()`, integer-range and regex-literal strategies,
//! tuple strategies, `collection::{vec, btree_set}`, the `prop_oneof!`
//! union macro, and the `proptest!` test macro with `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` and `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberately accepted:
//! * generation is driven by a fixed-seed deterministic RNG, so failures
//!   reproduce across runs without a persistence file;
//! * there is no shrinking — a failing case reports the assertion message
//!   and its case index instead of a minimized input;
//! * `prop_recursive` unrolls recursion eagerly to the requested depth
//!   rather than tracking a size budget.

use std::sync::Arc;

pub mod test_runner {
    //! Config, error type, RNG, and the case-running loop.

    /// Deterministic 64-bit generator (SplitMix64) driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Unbiased uniform sample in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let zone = u64::MAX - (u64::MAX % n);
            loop {
                let x = self.next_u64();
                if x < zone {
                    return x % n;
                }
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// A `prop_assume!` precondition did not hold; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration. Only `cases` is consulted; the other knobs
    /// exist so `..ProptestConfig::default()` spreads keep compiling.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on skipped (`prop_assume!`) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Runs one closure per generated case until `config.cases` pass.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> TestRunner {
            // Fixed seed: deterministic runs, reproducible failures.
            TestRunner {
                config,
                rng: TestRng::new(0xC0FF_EE11_D15E_A5E5),
            }
        }

        /// `body` generates its inputs from the provided RNG and returns
        /// `Err(Fail)` to fail the test or `Err(Reject)` to discard the case.
        pub fn run<F>(&mut self, mut body: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < self.config.cases {
                match body(&mut self.rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > self.config.max_global_rejects {
                            panic!(
                                "proptest: too many rejected cases ({rejected}) \
                                 after {passed} passes"
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {msg}", passed + rejected);
                    }
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators built on it.

    use super::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of type `Self::Value`.
    ///
    /// Object-safe core (`generate`) plus sized combinators, so trait
    /// objects behind [`BoxedStrategy`] keep working.
    pub trait Strategy {
        type Value;

        /// Produce one value from the RNG stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Build a recursive strategy: `recurse` receives a strategy for
        /// the previous level and wraps it one level deeper. Upstream
        /// tracks a size budget; this shim unrolls `depth` levels eagerly,
        /// unioning each level with the leaf so shallow values stay common.
        /// `_desired_size` and `_expected_branch` are accepted for
        /// signature compatibility only.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut level: BoxedStrategy<Self::Value> = self.clone().boxed();
            for _ in 0..depth {
                let deeper = recurse(level).boxed();
                level = Union::new(vec![self.clone().boxed(), deeper]).boxed();
            }
            level
        }

        /// Type-erase behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A clonable, type-erased strategy handle.
    pub struct BoxedStrategy<T>(pub(crate) Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `s.prop_map(f)`.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    // Integer range strategies: `0i64..8`, `1usize..4`, ...
    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_signed {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.start.abs_diff(self.end);
                    self.start.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        )*};
    }

    impl_range_strategy_signed!(i8, i16, i32, i64, isize);

    // Tuple strategies: `(0i64..8, 0i64..8)`.
    macro_rules! impl_tuple_strategy {
        ($($S:ident/$v:ident),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($S,)+) = self;
                    $(let $v = $S.generate(rng);)+
                    ($($v,)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);

    /// Strategy for string literals: a small regex subset of the form
    /// `[class]{m,n}` where `class` is literal chars and `x-y` ranges
    /// (unicode escapes are already resolved by the Rust literal).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_char_class_pattern(self);
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    /// Parses `[class]{m,n}` into (expanded alphabet, m, n). Panics on
    /// anything outside that subset — this shim is not a regex engine.
    fn parse_char_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let bad =
            |why: &str| -> ! { panic!("unsupported string strategy pattern {pattern:?}: {why}") };
        let mut chars = pattern.chars().peekable();
        if chars.next() != Some('[') {
            bad("expected leading '['");
        }
        // Collect the raw class body so `x-y` can be disambiguated from a
        // literal '-' (proptest's own classes put literal '-' first/last;
        // our greedy scan treats 'a-b' as a range whenever it appears).
        let mut body: Vec<char> = Vec::new();
        loop {
            match chars.next() {
                Some(']') => break,
                Some('\\') => body.push(chars.next().unwrap_or_else(|| bad("dangling escape"))),
                Some(c) => body.push(c),
                None => bad("unterminated character class"),
            }
        }
        let mut alphabet: Vec<char> = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                if lo > hi {
                    bad("descending range");
                }
                alphabet.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                alphabet.push(body[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            bad("empty character class");
        }
        if chars.next() != Some('{') {
            bad("expected '{m,n}' repetition");
        }
        let rest: String = chars.collect();
        let rest = rest.strip_suffix('}').unwrap_or_else(|| bad("missing '}'"));
        let (m, n) = match rest.split_once(',') {
            Some((m, n)) => (
                m.trim().parse().unwrap_or_else(|_| bad("bad min")),
                n.trim().parse().unwrap_or_else(|_| bad("bad max")),
            ),
            None => {
                let k = rest.trim().parse().unwrap_or_else(|_| bad("bad count"));
                (k, k)
            }
        };
        if m > n {
            bad("min > max");
        }
        (alphabet, m, n)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn char_class_parsing() {
            let (alpha, m, n) = parse_char_class_pattern("[a-z]{0,6}");
            assert_eq!(alpha.len(), 26);
            assert_eq!((m, n), (0, 6));
            let (alpha, m, n) = parse_char_class_pattern("[ -~\u{e0}-\u{ff}]{0,12}");
            assert_eq!(alpha.len(), 95 + 32);
            assert_eq!((m, n), (0, 12));
        }

        #[test]
        fn string_strategy_respects_bounds() {
            let mut rng = TestRng::new(1);
            for _ in 0..100 {
                let s = "[a-z]{2,4}".generate(&mut rng);
                assert!((2..=4).contains(&s.chars().count()), "{s:?}");
                assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }
}

/// `any::<T>()` — whole-domain generation with a bias toward boundary
/// values, mirroring upstream's edge-case weighting for integers.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // 1-in-4 draws come from the boundary set.
                    if rng.below(4) == 0 {
                        const EDGES: [$t; 5] =
                            [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX - 1];
                        EDGES[rng.below(EDGES.len() as u64) as usize]
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! `proptest::collection::{vec, btree_set}`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` aiming for a cardinality drawn from `size`; duplicate
    /// draws may leave it smaller, as with upstream's implementation.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            // Bounded attempts: small domains may not reach `target`.
            for _ in 0..target.saturating_mul(4).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;` — everything the test macros reference.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

pub use strategy::{BoxedStrategy, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

// Re-exported so `BoxedStrategy` construction in `prop_recursive` has a
// stable path from the macros below.
#[doc(hidden)]
pub fn __boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy(Arc::new(s))
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::__boxed($arm)),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!(
                    "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
                    left, right
                )),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!(
                    "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}\n{}",
                    left, right, format!($($fmt)+)
                )),
            );
        }
    }};
}

/// Discard the current case (does not count toward `cases`) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// The test-defining macro. Mirrors upstream syntax: an optional
/// `#![proptest_config(...)]` header, then `fn` items whose arguments are
/// `pattern in strategy` pairs; attributes (including `#[test]`) pass
/// through untouched.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run(|__proptest_rng| {
                $(
                    let $parm =
                        $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);
                )+
                let __proptest_body =
                    || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                __proptest_body()
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0i64..10, (a, b) in (0u64..5, 1usize..3)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert_eq!(b.min(2), b);
        }

        #[test]
        fn assume_rejects(x in 0i64..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    proptest! {
        #[test]
        fn recursion_terminates(v in arb_nested()) {
            prop_assert!(depth(&v) <= 4, "depth {} too deep", depth(&v));
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Nested {
        Leaf(i64),
        Node(Vec<Nested>),
    }

    fn depth(v: &Nested) -> usize {
        match v {
            Nested::Leaf(_) => 1,
            Nested::Node(vs) => 1 + vs.iter().map(depth).max().unwrap_or(0),
        }
    }

    fn arb_nested() -> impl Strategy<Value = Nested> {
        let leaf = prop_oneof![any::<i64>().prop_map(Nested::Leaf), Just(Nested::Leaf(0)),];
        leaf.prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Nested::Node)
        })
    }
}
