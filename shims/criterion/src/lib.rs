//! Vendored stand-in for the `criterion` crate (offline build).
//!
//! Implements the API surface the `benches/` targets use — benchmark
//! groups, `bench_with_input`, `Bencher::{iter, iter_batched}`,
//! `BenchmarkId`, `criterion_group!` / `criterion_main!` — with plain
//! wall-clock timing instead of criterion's statistical analysis. Each
//! benchmark runs `sample_size` samples and reports min / median / max
//! per-iteration time on stdout, which is enough for the coarse
//! before/after comparisons the experiment tables make.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export point so `criterion::black_box(x)` keeps working.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Controls how `iter_batched` amortizes setup cost. The shim times the
/// routine per batch element either way, so the variants only document
/// intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to bench closures; `iter`/`iter_batched` record one sample.
pub struct Bencher {
    sample: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            sample: Duration::ZERO,
            iters: 0,
        }
    }

    /// Time `routine` once and record the sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.sample += start.elapsed();
        self.iters += 1;
        black_box(out);
    }

    /// Build an input with `setup` (untimed), then time `routine` on it.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.sample += start.elapsed();
        self.iters += 1;
        black_box(out);
    }

    fn per_iter(&self) -> Option<Duration> {
        (self.iters > 0).then(|| self.sample / self.iters as u32)
    }
}

/// A named set of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_samples(&id.label, |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into();
        self.run_samples(&label, |b| f(b));
        self
    }

    fn run_samples<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        // One untimed warmup pass, then the measured samples.
        let mut warmup = Bencher::new();
        f(&mut warmup);
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher::new();
            f(&mut b);
            if let Some(t) = b.per_iter() {
                samples.push(t);
            }
        }
        if samples.is_empty() {
            println!("{}/{label}: no samples recorded", self.name);
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        println!(
            "{}/{label}: min {:?} / median {:?} / max {:?} ({} samples)",
            self.name,
            samples[0],
            median,
            samples[samples.len() - 1],
            samples.len(),
        );
    }

    /// Ends the group. Consuming `self` keeps call sites identical to
    /// upstream; all reporting already happened per benchmark.
    pub fn finish(self) {}
}

/// The top-level driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _parent: self,
        }
    }
}

/// Bundles bench functions under one group function, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        (1..=n)
            .fold((0u64, 1u64), |(a, b), _| (b, a.wrapping_add(b)))
            .0
    }

    fn bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        for n in [5u64, 10] {
            group.bench_with_input(BenchmarkId::new("fib", n), &n, |b, &n| {
                b.iter(|| fib(n));
            });
        }
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter_batched(|| n, fib, BatchSize::LargeInput);
        });
        group.finish();
    }

    criterion_group!(benches, bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
