//! Vendored stand-in for the `rand` crate (offline build).
//!
//! Implements the slice of the rand 0.8 API this workspace uses —
//! `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open integer ranges — on top of a
//! xoshiro256** generator seeded through SplitMix64.
//!
//! The workloads only need *deterministic, well-mixed* streams, not
//! compatibility with upstream rand's exact value sequences: every caller
//! seeds explicitly and compares runs against each other, never against
//! hard-coded expected samples.

use std::ops::Range;

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers (blanket-implemented for every source).
pub trait Rng: RngCore {
    /// A uniform sample from a half-open range. Panics on empty ranges.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// A uniformly distributed value of a sampleable type.
    fn gen<T: UniformFull>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_full(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Integer types that can be drawn uniformly from a half-open range.
pub trait UniformInt: Copy {
    /// Draw uniformly from `[range.start, range.end)`.
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Types with a "whole domain" uniform distribution.
pub trait UniformFull {
    /// Draw uniformly from the full domain.
    fn sample_full<R: RngCore>(rng: &mut R) -> Self;
}

/// Unbiased sample in `[0, span)` by rejection (Lemire-style widening
/// multiply kept simple: plain rejection on the top of the range).
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end - range.start) as u64;
                range.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                (range.start as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_full_int {
    ($($t:ty),*) => {$(
        impl UniformFull for $t {
            fn sample_full<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_full_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformFull for bool {
    fn sample_full<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64 (upstream `StdRng` is also a seedable, unspecified
    /// algorithm; only determinism is contractual).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: Vec<i64> = (0..8).map(|_| a.gen_range(0..1000)).collect();
        let other: Vec<i64> = (0..8).map(|_| c.gen_range(0..1000)).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(0usize..5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
        }
    }
}
