//! Vendored stand-in for the `rustc-hash` crate.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors the small dependencies it needs. This shim
//! implements the classic FxHash multiply-rotate scheme (the same algorithm
//! rustc uses for its interner tables) behind the exact type aliases the
//! real crate exports: [`FxHashMap`], [`FxHashSet`], [`FxHasher`],
//! [`FxBuildHasher`].
//!
//! FxHash is *not* collision-resistant against adversarial keys; it is used
//! here exactly as upstream intends — fast hashing of trusted, internal
//! keys (interned symbols, oids, ground values).

use std::hash::{BuildHasherDefault, Hasher};

/// A speed-oriented, non-cryptographic hasher (the rustc FxHash scheme).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

/// 64-bit multiply constant from the upstream implementation (derived from
/// the golden ratio, as in Fibonacci hashing).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Mix in the length so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rest.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A [`BuildHasher`](std::hash::BuildHasher) producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using FxHash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using FxHash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".to_owned(), 1);
        m.insert("b".to_owned(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hashing_is_deterministic_and_length_sensitive() {
        fn h(bytes: &[u8]) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        }
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"ab"), h(b"ab\0"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefgi"));
    }
}
